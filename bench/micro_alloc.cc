// Allocation audit for the simulator hot path (DESIGN.md §8).
//
// This binary replaces global operator new/delete with counting wrappers and
// proves the zero-allocation claims directly:
//
//   BM_SimulatorSchedule  schedule+dispatch through pooled event nodes
//   BM_ScheduleCancel     schedule+cancel churn (tombstones, no frees)
//   BM_PacketPoolAlloc    acquire/release through the packet free list
//
// The steady-state audits additionally cover the flat flow table and flow
// slab (src/tas/flow_table): connection churn at stable capacity recycles
// tombstones and free-list slots without touching the allocator.
//
// Each benchmark also reports an "allocs/op" counter. After the benchmarks,
// main() runs a steady-state audit: warm up each path, snapshot the counter,
// run N more operations, and FAIL (nonzero exit) if any allocation happened.
// CI runs this binary; a regression that sneaks a malloc back into the hot
// path turns the build red.
//
// The counting hook must cover every operator new overload (sized, aligned,
// nothrow) or a stray overload bypasses the audit.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/sim/simulator.h"
#include "src/tas/flow_table.h"

namespace {

std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_free_count{0};

uint64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

void* CountedAlloc(size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size ? size : 1);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void* CountedAlignedAlloc(size_t size, size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::aligned_alloc(align, (size + align - 1) / align * align);
  if (ptr == nullptr) {
    throw std::bad_alloc();
  }
  return ptr;
}

void CountedFree(void* ptr) {
  if (ptr != nullptr) {
    g_free_count.fetch_add(1, std::memory_order_relaxed);
    std::free(ptr);
  }
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void* operator new[](size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<size_t>(align));
}
void operator delete(void* ptr) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, size_t) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, size_t) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, size_t, std::align_val_t) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, size_t, std::align_val_t) noexcept { CountedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { CountedFree(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept { CountedFree(ptr); }

namespace tas {
namespace {

// Schedule + dispatch one event per iteration. After the slab warms up the
// node and heap entry are recycled, so steady state must not allocate.
void BM_SimulatorSchedule(benchmark::State& state) {
  Simulator sim;
  uint64_t sink = 0;
  TimeNs when = 0;
  const uint64_t allocs_before_warm = AllocCount();
  for (auto _ : state) {
    sim.At(when, [&sink] { ++sink; });
    when += 10;
    sim.RunUntil(when);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(AllocCount() - allocs_before_warm),
      benchmark::Counter::kAvgIterations);
}

// Schedule + cancel churn: the classic timer pattern. Cancellation bumps a
// generation and pushes nothing; the tombstone is skipped (or purged) later.
void BM_ScheduleCancel(benchmark::State& state) {
  Simulator sim;
  uint64_t sink = 0;
  TimeNs when = 0;
  const uint64_t allocs_before_warm = AllocCount();
  for (auto _ : state) {
    EventHandle h = sim.At(when + 1000, [&sink] { ++sink; });
    h.Cancel();
    when += 10;
    sim.RunUntil(when);
  }
  benchmark::DoNotOptimize(sink);
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(AllocCount() - allocs_before_warm),
      benchmark::Counter::kAvgIterations);
}

// Acquire/release through the pool free list; payload capacity is retained
// across recycles, so steady state must not allocate.
void BM_PacketPoolAlloc(benchmark::State& state) {
  PacketPool pool;
  {
    // Warm one packet with a typical payload so capacity is in the free list.
    PacketPtr pkt = pool.Acquire();
    pkt->payload.resize(1448);
  }
  const uint64_t allocs_before_warm = AllocCount();
  for (auto _ : state) {
    PacketPtr pkt = pool.Acquire();
    pkt->payload.resize(1448);
    benchmark::DoNotOptimize(pkt->payload.data());
  }
  state.counters["allocs/op"] = benchmark::Counter(
      static_cast<double>(AllocCount() - allocs_before_warm),
      benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_SimulatorSchedule);
BENCHMARK(BM_ScheduleCancel);
BENCHMARK(BM_PacketPoolAlloc);

// --- Steady-state audit (ALLOC_AUDIT lines; CI fails on any FAIL) ----------

bool AuditSimulatorSchedule() {
  Simulator sim;
  uint64_t sink = 0;
  TimeNs when = 0;
  for (int i = 0; i < 1024; ++i) {  // Warm the slab and the heap vector.
    sim.At(when, [&sink] { ++sink; });
    when += 10;
    sim.RunUntil(when);
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 100000; ++i) {
    sim.At(when, [&sink] { ++sink; });
    when += 10;
    sim.RunUntil(when);
  }
  const uint64_t allocs = AllocCount() - before;
  std::printf("ALLOC_AUDIT simulator_schedule allocs=%llu %s\n",
              static_cast<unsigned long long>(allocs), allocs == 0 ? "PASS" : "FAIL");
  return allocs == 0;
}

bool AuditScheduleCancel() {
  Simulator sim;
  uint64_t sink = 0;
  TimeNs when = 0;
  for (int i = 0; i < 1024; ++i) {
    EventHandle h = sim.At(when + 1000, [&sink] { ++sink; });
    h.Cancel();
    when += 10;
    sim.RunUntil(when);
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 100000; ++i) {
    EventHandle h = sim.At(when + 1000, [&sink] { ++sink; });
    h.Cancel();
    when += 10;
    sim.RunUntil(when);
  }
  const uint64_t allocs = AllocCount() - before;
  std::printf("ALLOC_AUDIT schedule_cancel allocs=%llu %s\n",
              static_cast<unsigned long long>(allocs), allocs == 0 ? "PASS" : "FAIL");
  return allocs == 0;
}

bool AuditPacketPool() {
  PacketPool pool;
  for (int i = 0; i < 64; ++i) {
    PacketPtr pkt = pool.Acquire();
    pkt->payload.resize(1448);
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 100000; ++i) {
    PacketPtr pkt = pool.Acquire();
    pkt->payload.resize(1448);
    benchmark::DoNotOptimize(pkt->payload.data());
  }
  const uint64_t allocs = AllocCount() - before;
  std::printf("ALLOC_AUDIT packet_pool allocs=%llu %s\n",
              static_cast<unsigned long long>(allocs), allocs == 0 ? "PASS" : "FAIL");
  return allocs == 0;
}

// Connection churn at stable population: erase + reinsert recycles the
// erased key's tombstone on the very probe path that finds it, so the table
// never grows and never rehashes — and therefore never allocates.
bool AuditFlowTable() {
  constexpr uint32_t kFlows = 4096;
  FlowTable table;
  std::vector<FlowKey> keys;
  keys.reserve(kFlows);
  for (uint32_t i = 0; i < kFlows; ++i) {
    FlowKey key;
    key.local_port = static_cast<uint16_t>(1000 + (i % 50000));
    key.peer_ip = 0x0A000000u + (i << 5);
    key.peer_port = static_cast<uint16_t>(2000 + (i % 60000));
    keys.push_back(key);
    table.Insert(key, MakeFlowId(i & kFlowSlotMask, 0));
  }
  for (uint32_t i = 0; i < kFlows; ++i) {  // Warm the churn path.
    table.Erase(keys[i]);
    table.Insert(keys[i], MakeFlowId(i & kFlowSlotMask, 1));
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 100000; ++i) {
    const FlowKey& key = keys[static_cast<uint32_t>(i) % kFlows];
    table.Erase(key);
    table.Insert(key, MakeFlowId(static_cast<uint32_t>(i) & kFlowSlotMask, 2));
    benchmark::DoNotOptimize(table.Find(key));
  }
  const uint64_t allocs = AllocCount() - before;
  std::printf("ALLOC_AUDIT flow_table allocs=%llu %s\n",
              static_cast<unsigned long long>(allocs), allocs == 0 ? "PASS" : "FAIL");
  return allocs == 0;
}

// Flow slot recycling through the slab free list: Free resets the flow in
// place (buffers keep their capacity) and Allocate pops the free list, so
// steady-state connection turnover is allocation-free.
bool AuditFlowSlab() {
  FlowSlab slab;
  std::vector<FlowId> ids;
  for (int i = 0; i < 1024; ++i) {
    ids.push_back(slab.Allocate());
  }
  for (FlowId& id : ids) {  // Warm the free list.
    slab.Free(id);
    id = slab.Allocate();
  }
  const uint64_t before = AllocCount();
  for (int i = 0; i < 100000; ++i) {
    FlowId& id = ids[static_cast<size_t>(i) % ids.size()];
    slab.Free(id);
    id = slab.Allocate();
    benchmark::DoNotOptimize(slab.Get(id));
  }
  const uint64_t allocs = AllocCount() - before;
  std::printf("ALLOC_AUDIT flow_slab allocs=%llu %s\n",
              static_cast<unsigned long long>(allocs), allocs == 0 ? "PASS" : "FAIL");
  return allocs == 0;
}

}  // namespace
}  // namespace tas

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bool ok = true;
  ok &= tas::AuditSimulatorSchedule();
  ok &= tas::AuditScheduleCancel();
  ok &= tas::AuditPacketPool();
  ok &= tas::AuditFlowTable();
  ok &= tas::AuditFlowSlab();
  std::printf("ALLOC_AUDIT overall %s (news=%llu frees=%llu)\n", ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(g_alloc_count.load()),
              static_cast<unsigned long long>(g_free_count.load()));
  return ok ? 0 : 1;
}
