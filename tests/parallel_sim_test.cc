// Parallel-executor determinism suite (DESIGN.md §13).
//
// The island-partitioned executor must produce byte-identical workload
// results for every thread count — the schedule is a pure function of the
// workload (event timestamps + scheduling provenance), never of how islands
// are spread over OS threads. These tests sweep sim_threads ∈ {1, 2, 4}
// over a star topology (TAS server + 3 TAS clients, so every host is its
// own island around the switch island) and compare full fingerprints:
// delivered bytes, per-connection payloads, retransmit counters, link drop
// counters, fault log, and total events executed.
//
// The serial single-heap simulator is the reference semantics: the
// partitioned schedule equals it whenever scheduling provenance
// disambiguates same-timestamp ties (verified here on a staggered-delay
// topology); fully symmetric workloads may resolve deep ties differently —
// deterministically, but not bit-equal to serial (see QueueEntry).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/harness/experiment.h"
#include "src/sim/parallel.h"
#include "src/trace/latency.h"

namespace tas {
namespace {

// Pin the executor width to what each test says: TAS_SIM_THREADS would
// otherwise override the per-spec sim_threads these tests sweep.
class ParallelSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("TAS_SIM_THREADS");
    if (env != nullptr) {
      saved_ = env;
      had_env_ = true;
      unsetenv("TAS_SIM_THREADS");
    }
  }
  void TearDown() override {
    if (had_env_) {
      setenv("TAS_SIM_THREADS", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
  bool had_env_ = false;
};

LinkConfig IslandLink(TimeNs propagation) {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = propagation;
  link.queue_limit_pkts = 256;
  // Default seed (0): each Link derives its fault-RNG stream from its
  // endpoint identities, so the same link in separately constructed
  // experiments draws identically.
  return link;
}

HostSpec TasSpec(int sim_threads) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.tas.sim_threads = sim_threads;  // 0 = serial single-heap reference.
  return spec;
}

class RecordingServer : public AppHandler {
 public:
  RecordingServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    const size_t n = stack_->Recv(conn, buf.data(), bytes);
    per_conn_[conn] += n;
    received_ += n;
  }
  void OnRemoteClosed(ConnId conn) override { stack_->Close(conn); }

  Stack* stack_;
  uint16_t port_;
  std::map<ConnId, size_t> per_conn_;
  size_t received_ = 0;
};

class PatternClient : public AppHandler {
 public:
  PatternClient(Stack* stack, IpAddr server, uint16_t port, size_t total)
      : stack_(stack), server_(server), port_(port), total_(total) {}
  void Start() {
    stack_->SetHandler(this);
    ConnId id = stack_->Connect(server_, port_);
    progress_[id] = Progress{};
  }
  void OnConnected(ConnId conn, bool success) override {
    if (success) {
      Pump(conn);
    }
  }
  void OnSendSpace(ConnId conn, size_t bytes) override {
    auto it = progress_.find(conn);
    if (it == progress_.end()) {
      return;
    }
    it->second.acked += bytes;
    Pump(conn);
    if (it->second.sent >= total_ && it->second.acked >= total_ && !it->second.closed) {
      it->second.closed = true;
      stack_->Close(conn);
    }
  }

  void Pump(ConnId conn) {
    Progress& p = progress_[conn];
    while (p.sent < total_) {
      uint8_t chunk[997];
      const size_t want = std::min(sizeof(chunk), total_ - p.sent);
      for (size_t i = 0; i < want; ++i) {
        chunk[i] = static_cast<uint8_t>((p.sent + i) % 251);
      }
      const size_t n = stack_->Send(conn, chunk, want);
      p.sent += n;
      if (n < want) {
        break;
      }
    }
  }

  struct Progress {
    size_t sent = 0;
    size_t acked = 0;
    bool closed = false;
  };
  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  size_t total_;
  std::map<ConnId, Progress> progress_;
};

constexpr size_t kClientHosts = 3;
constexpr size_t kBytesPerClient = 60000;

struct StarRun {
  std::string fingerprint;
  uint64_t retransmits = 0;
  uint64_t events = 0;
  int islands = 0;
  uint64_t cross_posts = 0;
  uint64_t latency_records = 0;
  uint64_t partition_mismatches = 0;
};

// One full star run: 3 TAS clients stream a fixed pattern to a TAS server,
// optionally through a chaos schedule (burst loss on one access link, a
// flap on another). The fingerprint captures everything the workload
// produced, so two identical fingerprints mean byte-identical runs.
StarRun RunStar(int sim_threads, bool chaos, bool staggered_delays) {
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  specs.push_back(TasSpec(sim_threads));
  specs.back().tas_overridden = true;
  specs.back().tas.trace.latency_stages = true;
  links.push_back(IslandLink(Us(2)));
  for (size_t i = 0; i < kClientHosts; ++i) {
    specs.push_back(TasSpec(sim_threads));
    // Staggered propagation delays de-synchronize the clients so every
    // same-timestamp tie is resolved by provenance, not island order.
    links.push_back(IslandLink(Us(2) + (staggered_delays ? 333 * (i + 1) : 0)));
  }
  auto exp = Experiment::Star(specs, links, /*switch_latency=*/500);

  if (sim_threads >= 1) {
    EXPECT_NE(exp->partition(), nullptr);
    EXPECT_EQ(exp->sim_threads(), sim_threads);
    // One island per host + the switch + control island 0.
    EXPECT_EQ(exp->partition()->num_islands(), static_cast<int>(kClientHosts) + 3);
  } else {
    EXPECT_EQ(exp->partition(), nullptr);
  }

  if (chaos) {
    FaultSchedule schedule;
    schedule.ImpairmentWindowBoth(Ms(3), Ms(9), exp->host_link(1),
                                  GilbertElliottLoss(0.2, 0.25, 0.9));
    schedule.LinkFlap(Ms(5), Ms(11), exp->host_link(2));
    exp->faults().Install(schedule);
  }

  RecordingServer server(exp->host(0).stack(), 7000);
  server.Start();
  std::vector<std::unique_ptr<PatternClient>> clients;
  for (size_t i = 0; i < kClientHosts; ++i) {
    clients.push_back(std::make_unique<PatternClient>(
        exp->host(1 + i).stack(), exp->host(0).ip(), 7000, kBytesPerClient));
    clients.back()->Start();
  }
  exp->sim().RunUntil(Sec(20));

  StarRun run;
  std::ostringstream fp;
  fp << "received=" << server.received_;
  for (const auto& [conn, bytes] : server.per_conn_) {
    fp << " conn" << conn << "=" << bytes;
  }
  for (size_t h = 0; h < exp->num_hosts(); ++h) {
    const TasStats& stats = exp->host(h).tas()->stats();
    fp << " h" << h << "=" << stats.fastpath_rx_packets << "/" << stats.fastpath_tx_packets
       << "/" << stats.fast_retransmits << "/" << stats.timeout_retransmits << "/"
       << stats.handshake_retransmits;
    run.retransmits +=
        stats.fast_retransmits + stats.timeout_retransmits + stats.handshake_retransmits;
  }
  for (size_t h = 0; h < exp->num_hosts(); ++h) {
    for (int side = 0; side < 2; ++side) {
      const LinkStats& s = exp->host_link(h)->stats(side);
      fp << " l" << h << "." << side << "=" << s.tx_packets << "/" << s.tx_bytes << "/"
         << s.drops_induced << "/" << s.drops_down << "/" << s.drops_overflow;
    }
  }
  // Same-instant fault events on different islands may append to the log in
  // either order (the set and timestamps are deterministic); sort before
  // fingerprinting.
  auto fault_log = exp->faults().log();
  std::sort(fault_log.begin(), fault_log.end(), [](const auto& a, const auto& b) {
    return a.at != b.at ? a.at < b.at : a.description < b.description;
  });
  for (const auto& entry : fault_log) {
    fp << " fault@" << entry.at << "=" << entry.description;
  }
  run.events = exp->events_executed();
  fp << " events=" << run.events;
  run.fingerprint = fp.str();
  if (SimPartition* partition = exp->partition()) {
    run.islands = partition->num_islands();
    run.cross_posts = partition->cross_posts();
  }
  const LatencyTracer& lat = exp->host(0).tas()->tracer().latency();
  run.latency_records = lat.completed();
  run.partition_mismatches = lat.partition_mismatches();
  return run;
}

// Every client delivered its full pattern — the workload actually ran.
void ExpectComplete(const StarRun& run) {
  EXPECT_NE(run.fingerprint.find(
                "received=" + std::to_string(kClientHosts * kBytesPerClient)),
            std::string::npos)
      << run.fingerprint;
}

TEST_F(ParallelSimTest, ThreadCountsProduceIdenticalResults) {
  // Fully symmetric clients — the tie-heaviest schedule — across the whole
  // sweep. The partitioned schedule must not depend on worker count.
  const StarRun t1 = RunStar(1, /*chaos=*/false, /*staggered_delays=*/false);
  const StarRun t2 = RunStar(2, /*chaos=*/false, /*staggered_delays=*/false);
  const StarRun t4 = RunStar(4, /*chaos=*/false, /*staggered_delays=*/false);
  ExpectComplete(t1);
  EXPECT_EQ(t1.fingerprint, t2.fingerprint);
  EXPECT_EQ(t1.fingerprint, t4.fingerprint);
  EXPECT_EQ(t1.islands, t2.islands);
  EXPECT_EQ(t1.cross_posts, t2.cross_posts);
  EXPECT_EQ(t1.cross_posts, t4.cross_posts);
  EXPECT_GT(t4.cross_posts, 0u);
}

TEST_F(ParallelSimTest, PartitionedMatchesSerialOnStaggeredTopology) {
  // With staggered access delays the clients never collide on a timestamp
  // the provenance chain cannot untangle, so the partitioned schedule must
  // reproduce the serial single-heap run bit for bit.
  const StarRun serial = RunStar(0, /*chaos=*/false, /*staggered_delays=*/true);
  const StarRun quad = RunStar(4, /*chaos=*/false, /*staggered_delays=*/true);
  ExpectComplete(serial);
  EXPECT_EQ(serial.fingerprint, quad.fingerprint);
}

TEST_F(ParallelSimTest, ChaosScheduleIsIdenticalAcrossThreadCounts) {
  // Burst loss + a link flap: retransmission machinery, per-direction loss
  // RNG streams, and the split per-side fault events must all land
  // identically regardless of worker count.
  const StarRun t1 = RunStar(1, /*chaos=*/true, /*staggered_delays=*/false);
  const StarRun t2 = RunStar(2, /*chaos=*/true, /*staggered_delays=*/false);
  const StarRun t4 = RunStar(4, /*chaos=*/true, /*staggered_delays=*/false);
  ExpectComplete(t4);
  EXPECT_EQ(t1.fingerprint, t2.fingerprint);
  EXPECT_EQ(t1.fingerprint, t4.fingerprint);
  // The chaos actually bit: something was dropped and retransmitted.
  EXPECT_GT(t4.retransmits, 0u);
  EXPECT_NE(t4.fingerprint.find("fault@"), std::string::npos);
}

TEST_F(ParallelSimTest, LatencyPartitionInvariantHoldsAtFourThreads) {
  // Per-packet stage stamping runs sharded per island; the partition
  // invariant (stage intervals sum exactly to end-to-end) must survive
  // cross-island flows at full width.
  const StarRun t4 = RunStar(4, /*chaos=*/false, /*staggered_delays=*/false);
  ExpectComplete(t4);
  EXPECT_GT(t4.latency_records, 0u);
  EXPECT_EQ(t4.partition_mismatches, 0u);
}

}  // namespace
}  // namespace tas
