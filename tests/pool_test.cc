// Tests for the packet pool (src/net/packet_pool): free-list recycling with
// retained payload capacity, deleter routing, teardown with packets captured
// in pending event closures, the TAS_NO_POOL escape hatch, and — the key
// invariant — that pooling never changes simulation behavior: same-seed runs
// emit byte-identical flow-event traces with the pool on or off.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/app/bulk.h"
#include "src/harness/experiment.h"
#include "src/net/packet_pool.h"
#include "src/sim/simulator.h"
#include "src/trace/tracer.h"

namespace tas {
namespace {

TEST(PacketPoolTest, RecyclesAndRetainsCapacity) {
  PacketPool pool;
  const uint8_t* payload_buf = nullptr;
  {
    PacketPtr pkt = pool.Acquire();
    pkt->payload.assign(1448, 0xAB);
    payload_buf = pkt->payload.data();
  }
  EXPECT_EQ(pool.free_size(), 1u);
  {
    PacketPtr pkt = pool.Acquire();
    // Recycled packet: cleared, but the payload buffer kept its capacity.
    EXPECT_TRUE(pkt->payload.empty());
    EXPECT_GE(pkt->payload.capacity(), 1448u);
    pkt->payload.resize(1448);
    EXPECT_EQ(pkt->payload.data(), payload_buf);
  }
  const PacketPoolStats stats = pool.stats();
  EXPECT_EQ(stats.allocated, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.released, 2u);
  EXPECT_EQ(stats.outstanding, 0u);
}

TEST(PacketPoolTest, RecycledPacketIsFullyCleared) {
  PacketPool pool;
  {
    PacketPtr pkt = pool.Acquire();
    pkt->ip.src = MakeIp(10, 0, 0, 1);
    pkt->tcp.seq = 12345;
    pkt->tcp.flags = TcpFlags::kSyn;
    pkt->payload.assign(64, 0xFF);
    pkt->enqueued_at = 999;
  }
  PacketPtr pkt = pool.Acquire();
  const Packet fresh;
  EXPECT_EQ(pkt->ip.src, fresh.ip.src);
  EXPECT_EQ(pkt->tcp.seq, fresh.tcp.seq);
  EXPECT_EQ(pkt->tcp.flags, fresh.tcp.flags);
  EXPECT_EQ(pkt->enqueued_at, fresh.enqueued_at);
  EXPECT_TRUE(pkt->payload.empty());
}

TEST(PacketPoolTest, CloneCopiesEverything) {
  PacketPool pool;
  PacketPtr src = pool.Acquire();
  src->ip.src = MakeIp(10, 0, 0, 1);
  src->ip.dst = MakeIp(10, 0, 0, 2);
  src->ip.ecn = Ecn::kCe;
  src->tcp.src_port = 7;
  src->tcp.dst_port = 9;
  src->tcp.seq = 42;
  src->tcp.flags = TcpFlags::kAck | TcpFlags::kPsh;
  src->payload = {1, 2, 3, 4};
  src->enqueued_at = 123;

  PacketPtr copy = pool.Clone(*src);
  EXPECT_EQ(copy->ip.src, src->ip.src);
  EXPECT_EQ(copy->ip.dst, src->ip.dst);
  EXPECT_EQ(copy->ip.ecn, src->ip.ecn);
  EXPECT_EQ(copy->tcp.seq, src->tcp.seq);
  EXPECT_EQ(copy->tcp.flags, src->tcp.flags);
  EXPECT_EQ(copy->payload, src->payload);
  EXPECT_EQ(copy->enqueued_at, src->enqueued_at);
  EXPECT_NE(copy.get(), src.get());
}

TEST(PacketPoolTest, MakeTcpPacketDrawsFromInstalledPool) {
  PacketPool pool;
  PacketPool* prev = PacketPool::Install(&pool);
  {
    auto pkt = MakeTcpPacket(MakeIp(10, 0, 0, 1), 1, MakeIp(10, 0, 0, 2), 2, 0, 0,
                             TcpFlags::kSyn);
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.free_size(), 1u);
  PacketPool::Install(prev);
}

TEST(PacketPoolTest, TeardownWithPendingEventsReturnsPackets) {
  // A packet captured in an event closure that never fires must flow back to
  // the pool when the simulator (and with it the closure) is destroyed.
  PacketPool pool;
  {
    Simulator sim;
    PacketPtr pkt = pool.Acquire();
    pkt->payload.resize(64);
    sim.At(1000000, [held = std::move(pkt)] { (void)held; });
    sim.RunUntil(10);  // The event never fires.
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.free_size(), 1u);
}

TEST(PacketPoolTest, DeleterRoutesToOwningPoolAcrossInstalls) {
  // A packet acquired under one installed pool must drain back to THAT pool
  // even if another pool is installed by the time it dies.
  PacketPool a;
  PacketPool b;
  PacketPool* prev = PacketPool::Install(&a);
  PacketPtr pkt = a.Acquire();
  PacketPool::Install(&b);
  pkt.reset();
  EXPECT_EQ(a.stats().outstanding, 0u);
  EXPECT_EQ(a.free_size(), 1u);
  EXPECT_EQ(b.free_size(), 0u);
  PacketPool::Install(prev);
}

TEST(PacketPoolTest, DisabledPoolingBypassesFreeList) {
  ASSERT_TRUE(PacketPool::PoolingEnabled());
  PacketPool::SetPoolingEnabled(false);
  {
    PacketPool pool;
    {
      PacketPtr pkt = pool.Acquire();
      pkt->payload.resize(64);
    }
    const PacketPoolStats stats = pool.stats();
    EXPECT_EQ(stats.unpooled, 1u);
    EXPECT_EQ(stats.allocated, 0u);
    EXPECT_EQ(pool.free_size(), 0u);
  }
  PacketPool::SetPoolingEnabled(true);
}

TEST(PacketPoolTest, FreeListRespectsCap) {
  PacketPool pool(/*max_free=*/2);
  std::vector<PacketPtr> live;
  for (int i = 0; i < 5; ++i) {
    live.push_back(pool.Acquire());
  }
  live.clear();
  EXPECT_EQ(pool.free_size(), 2u);  // The other three were freed for real.
  EXPECT_EQ(pool.stats().released, 5u);
}

// --- Determinism: pooling must not change what the simulation does ---------

// One lossy same-seed TAS bulk transfer; returns the sender's flow-event
// JSONL (handshakes, retransmits, cc updates — pure simulation behavior; no
// pool metrics, which legitimately differ with pooling off).
std::string RunLossyTransfer() {
  TasConfig tas_config;
  tas_config.trace.flow_events = true;

  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.app_cores = 2;
  spec.tas = tas_config;
  spec.tas_overridden = true;

  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 128;
  link.drop_rate = 0.02;
  link.rng_seed = 11;  // Fixed seed: byte-identical reruns.
  auto exp = Experiment::PointToPoint(spec, spec, link);

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 2;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();
  exp->sim().RunUntil(Ms(30));

  std::ostringstream f;
  exp->host(1).tas()->tracer().WriteFlowEventsJsonl(f);
  return f.str();
}

TEST(PacketPoolDeterminismTest, SameSeedIdenticalWithPoolOnAndOff) {
  ASSERT_TRUE(PacketPool::PoolingEnabled());
  const std::string pooled = RunLossyTransfer();
  PacketPool::SetPoolingEnabled(false);
  const std::string unpooled = RunLossyTransfer();
  PacketPool::SetPoolingEnabled(true);
  const std::string pooled_again = RunLossyTransfer();

  EXPECT_FALSE(pooled.empty());
  EXPECT_EQ(pooled, unpooled) << "pooling changed simulation behavior";
  EXPECT_EQ(pooled, pooled_again) << "same-seed rerun not reproducible";
}

}  // namespace
}  // namespace tas
