// Tests for batched fast-path processing (TasConfig::rx_batch_size /
// app_event_batch): same-seed same-batch runs must be byte-identical,
// rx_batch_size=1 must behave packet-serially, and batching must change
// only timing — not workload outcomes — while the new occupancy/doorbell
// counters actually move.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/app/rpc_echo.h"
#include "src/harness/experiment.h"
#include "src/tas/fast_path.h"
#include "src/trace/tracer.h"

namespace tas {
namespace {

struct BatchRun {
  std::string server_flow_events;
  std::string server_metrics;
  std::string client_flow_events;
  uint64_t ops = 0;
  uint64_t retransmits = 0;
  uint64_t rx_drops = 0;
  uint64_t batches = 0;
  uint64_t batch_items = 0;
  std::array<uint64_t, FastPathCore::kOccBuckets> occupancy{};
  double doorbells_coalesced = 0;
};

// Closed-loop echo between two TAS hosts on a clean (loss-free) link; every
// source of randomness is seeded, so a given (seed, batch size) pair is a
// single deterministic trajectory.
BatchRun RunEcho(int rx_batch, int app_event_batch) {
  TasConfig tas_config;
  tas_config.trace.flow_events = true;
  tas_config.rx_batch_size = rx_batch;
  tas_config.app_event_batch = app_event_batch;

  HostSpec spec;
  // Low-level API pricing keeps the app faster than the fast path, so it
  // drains to idle between batches — the state in which deferred doorbells
  // actually coalesce (a sockets-priced app is permanently mid-dispatch).
  spec.stack = StackKind::kTasLowLevel;
  // One app core = one context: all connections share a doorbell, so batched
  // deliveries exercise the coalescing path (with several contexts the echo
  // round-robin splits each batch one event per context and nothing latches).
  spec.app_cores = 1;
  spec.tas = tas_config;
  spec.tas_overridden = true;

  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  link.rng_seed = 23;
  auto exp = Experiment::PointToPoint(spec, spec, link);

  EchoServerConfig sc;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  EchoClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 8;
  cc.pipeline_depth = 8;
  EchoClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();
  exp->sim().RunUntil(Ms(20));

  BatchRun out;
  out.ops = client.completed();
  TasService* tas = exp->host(0).tas();
  const TasStats& stats = tas->stats();
  out.retransmits =
      stats.fast_retransmits + stats.timeout_retransmits + stats.handshake_retransmits;
  out.rx_drops = stats.rx_buffer_drops;
  for (int i = 0; i < tas->max_cores(); ++i) {
    out.batches += tas->fastpath(i)->batches();
    out.batch_items += tas->fastpath(i)->batch_items();
    for (size_t b = 0; b < FastPathCore::kOccBuckets; ++b) {
      out.occupancy[b] += tas->fastpath(i)->rx_occupancy()[b];
    }
  }
  // Both hosts: the side whose app outpaces its fast path (here the client,
  // which only sinks responses) is where doorbell coalescing shows up.
  for (int host = 0; host < 2; ++host) {
    for (const MetricSample& s :
         exp->host(host).tas()->tracer().metrics().Snapshot()) {
      if (s.name == "tas.contexts.doorbells_coalesced") {
        out.doorbells_coalesced += s.value;
      }
    }
  }
  std::ostringstream sf, sm, cf;
  tas->tracer().WriteFlowEventsJsonl(sf);
  tas->tracer().WriteMetricsJsonl(sm);
  exp->host(1).tas()->tracer().WriteFlowEventsJsonl(cf);
  out.server_flow_events = sf.str();
  out.server_metrics = sm.str();
  out.client_flow_events = cf.str();
  return out;
}

TEST(BatchingTest, SameSeedSameBatchSizeIsByteIdentical) {
  const BatchRun a = RunEcho(16, 16);
  const BatchRun b = RunEcho(16, 16);
  EXPECT_GT(a.ops, 0u);
  EXPECT_EQ(a.server_flow_events, b.server_flow_events);
  EXPECT_EQ(a.server_metrics, b.server_metrics);
  EXPECT_EQ(a.client_flow_events, b.client_flow_events);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.batch_items, b.batch_items);
}

TEST(BatchingTest, BatchSizeOneIsPacketSerial) {
  const BatchRun run = RunEcho(1, 1);
  EXPECT_GT(run.ops, 0u);
  EXPECT_EQ(run.retransmits, 0u);
  ASSERT_GT(run.batches, 0u);
  // Serial mode: every dispatch handles exactly one item, so the occupancy
  // histogram only holds 0-RX (pure TX work) and 1-RX batches.
  EXPECT_EQ(run.batch_items, run.batches);
  for (size_t b = 2; b < FastPathCore::kOccBuckets; ++b) {
    EXPECT_EQ(run.occupancy[b], 0u) << "bucket " << b;
  }
  // And byte-identical on rerun, like any fixed batch size.
  const BatchRun again = RunEcho(1, 1);
  EXPECT_EQ(run.server_flow_events, again.server_flow_events);
  EXPECT_EQ(run.ops, again.ops);
}

TEST(BatchingTest, BatchingChangesTimingNotOutcomes) {
  const BatchRun serial = RunEcho(1, 1);
  const BatchRun batched = RunEcho(16, 16);

  // Workload invariants: a clean link stays retransmit- and drop-free at
  // every batch size, and closed-loop progress is comparable (batching
  // shifts latency slightly; it must not change what the workload does).
  EXPECT_EQ(serial.retransmits, 0u);
  EXPECT_EQ(batched.retransmits, 0u);
  EXPECT_EQ(serial.rx_drops, 0u);
  EXPECT_EQ(batched.rx_drops, 0u);
  ASSERT_GT(serial.ops, 0u);
  ASSERT_GT(batched.ops, 0u);
  const double ratio =
      static_cast<double>(batched.ops) / static_cast<double>(serial.ops);
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.35);

  // The batch machinery must actually engage: multi-item batches occur
  // (pipeline depth 8 x 8 connections keeps the fast path busy), dispatches
  // drop, and app doorbells get coalesced.
  EXPECT_GT(batched.batch_items, batched.batches);
  EXPECT_LT(batched.batches, serial.batches);
  uint64_t multi = 0;
  for (size_t b = 2; b < FastPathCore::kOccBuckets; ++b) {
    multi += batched.occupancy[b];
  }
  EXPECT_GT(multi, 0u);
  EXPECT_GT(batched.doorbells_coalesced, 0.0);
}

}  // namespace
}  // namespace tas
