// Flow-group steering tests (src/tas/steering): idle groups flip their RSS
// redirection entry immediately, busy source cores drain through the quiesce
// protocol (with TX work parked on the group and re-enqueued on the target),
// and same-seed runs with load-aware migration enabled stay byte-identical.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/harness/experiment.h"
#include "src/tas/fast_path.h"
#include "src/tas/steering.h"
#include "src/util/zipf.h"

namespace tas {
namespace {

class SteeringFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    HostSpec spec;
    spec.stack = StackKind::kTas;
    spec.stack_cores = 4;
    LinkConfig link;
    exp_ = Experiment::PointToPoint(spec, spec, link);
    service_ = exp_->host(0).tas();
  }

  // Allocates an established flow and returns (id, redirection entry).
  std::pair<FlowId, int> EstablishedFlow(uint16_t local_port) {
    const FlowKey key{local_port, MakeIp(10, 9, 0, 2), 7000};
    const FlowId id = service_->AllocateFlow(key);
    Flow* flow = service_->flow_by_id(id);
    flow->cstate = ConnState::kEstablished;
    return {id, service_->RedirectionEntryForFlow(*flow)};
  }

  // Injects a pure in-window ACK for the flow into the NIC (lands on the
  // flow's RSS ring; the fast path takes the established no-op path).
  void InjectAck(FlowId id) {
    const Flow* f = service_->flow_by_id(id);
    service_->nic()->Receive(MakeTcpPacket(f->fs.peer_ip, f->fs.peer_port,
                                           service_->local_ip(), f->fs.local_port, f->fs.ack,
                                           f->fs.tx_tail, TcpFlags::kAck));
  }

  std::unique_ptr<Experiment> exp_;
  TasService* service_ = nullptr;
};

TEST_F(SteeringFixture, IdleGroupFlipsImmediately) {
  FlowGroupSteering* steer = service_->steering();
  const int source = steer->CoreOf(0);
  const int target = (source + 1) % 4;
  EXPECT_TRUE(steer->MigrateGroup(0, target));
  // No in-flight work on the source core: the entry flips synchronously —
  // byte-identical to the legacy eager redirection-table rewrite.
  EXPECT_FALSE(steer->Draining(0));
  EXPECT_EQ(steer->CoreOf(0), target);
  EXPECT_EQ(service_->nic()->RedirectionEntryQueue(0), target);
  EXPECT_EQ(steer->group_moves(), 1u);
  EXPECT_EQ(steer->migrations(), 0u);  // No drain was needed.
  // Migrating to the current owner is a no-op.
  EXPECT_FALSE(steer->MigrateGroup(0, target));
  EXPECT_EQ(steer->group_moves(), 1u);
}

TEST_F(SteeringFixture, BusySourceDrainsThenFlipsAndReenqueuesDeferredTx) {
  FlowGroupSteering* steer = service_->steering();
  const auto [id, entry] = EstablishedFlow(4242);
  const int source = steer->CoreOf(entry);
  const int target = (source + 1) % 4;

  // Park packets on the source core's ring WITHOUT running the simulator:
  // the migration request must observe the backlog and enter drain mode.
  for (int i = 0; i < 8; ++i) {
    InjectAck(id);
  }
  ASSERT_GT(service_->nic()->RxQueueLen(source), 0u);
  EXPECT_TRUE(steer->MigrateGroup(entry, target));
  EXPECT_TRUE(steer->Draining(entry));
  EXPECT_EQ(steer->CoreOf(entry), source) << "entry must not flip before the drain";

  // TX work arriving for the draining group parks on the group, not a core.
  service_->ScheduleFlowTx(id, 0);
  EXPECT_TRUE(service_->flow_by_id(id)->tx_pending);
  EXPECT_EQ(steer->deferred_items(), 1u);

  // Run: the source core retires its batches, the quiesce clock passes the
  // drain target, the entry flips, and the deferred work re-enqueues on the
  // target core.
  exp_->sim().RunUntil(Ms(5));
  EXPECT_FALSE(steer->Draining(entry));
  EXPECT_EQ(steer->CoreOf(entry), target);
  EXPECT_EQ(steer->migrations(), 1u);  // A real drain completed.
  EXPECT_EQ(steer->group_moves(), 1u);
  // The re-enqueued TX item was processed (nothing to send clears the flag).
  EXPECT_FALSE(service_->flow_by_id(id)->tx_pending);
  EXPECT_EQ(service_->stats().exceptions, 0u);
}

TEST_F(SteeringFixture, DrainRetargetsInsteadOfStacking) {
  FlowGroupSteering* steer = service_->steering();
  const auto [id, entry] = EstablishedFlow(5151);
  const int source = steer->CoreOf(entry);
  for (int i = 0; i < 4; ++i) {
    InjectAck(id);
  }
  ASSERT_TRUE(steer->MigrateGroup(entry, (source + 1) % 4));
  ASSERT_TRUE(steer->Draining(entry));
  // A second request while draining retargets the same drain.
  const int final_target = (source + 2) % 4;
  EXPECT_TRUE(steer->MigrateGroup(entry, final_target));
  exp_->sim().RunUntil(Ms(5));
  EXPECT_EQ(steer->CoreOf(entry), final_target);
  EXPECT_EQ(steer->migrations(), 1u) << "one drain, retargeted — not two";
}

// Same seed + load-aware migration enabled twice: the steering decisions,
// per-core retirement counters, and NIC per-entry hit counts must be
// byte-identical across runs (the §3.4 controller reads only deterministic
// simulator state).
TEST(SteeringDeterminismTest, SameSeedRerunsAreByteIdentical) {
  auto run = [] {
    HostSpec spec;
    spec.stack = StackKind::kTas;
    spec.stack_cores = 4;
    spec.tas_overridden = true;
    spec.tas.max_fastpath_cores = 4;
    spec.tas.group_migration = true;
    spec.tas.migrate_imbalance = 1.05;
    spec.tas.monitor_interval = Ms(1);
    HostSpec peer;
    auto exp = Experiment::PointToPoint(spec, peer, LinkConfig{});
    TasService* tas = exp->host(0).tas();

    std::vector<FlowId> ids;
    for (uint16_t i = 0; i < 2048; ++i) {
      const FlowKey key{static_cast<uint16_t>(3000 + i), MakeIp(10, 9, 1, 2), 7000};
      ids.push_back(tas->AllocateFlow(key));
      tas->flow_by_id(ids.back())->cstate = ConnState::kEstablished;
    }

    ZipfGenerator zipf(ids.size(), 1.2);
    Rng rng(0xD1CE);
    uint16_t next_port = 6000;
    for (int round = 0; round < 24; ++round) {
      for (int p = 0; p < 64; ++p) {
        const Flow* f = tas->flow_by_id(ids[zipf.Sample(rng)]);
        tas->nic()->Receive(MakeTcpPacket(f->fs.peer_ip, f->fs.peer_port, tas->local_ip(),
                                          f->fs.local_port, f->fs.ack, f->fs.tx_tail,
                                          TcpFlags::kAck));
      }
      exp->sim().RunUntil(exp->sim().Now() + Us(200));
      // Churn: freed ids must go stale before the slot is reused.
      const size_t victim = static_cast<size_t>(round) * 7 % ids.size();
      const FlowId old_id = ids[victim];
      tas->FreeFlow(old_id);
      EXPECT_EQ(tas->flow_by_id(old_id), nullptr);
      const FlowKey key{next_port++, MakeIp(10, 9, 2, 2), 7000};
      ids[victim] = tas->AllocateFlow(key);
      tas->flow_by_id(ids[victim])->cstate = ConnState::kEstablished;
    }
    exp->sim().RunUntil(exp->sim().Now() + Ms(2));

    uint64_t items = 0;
    for (int i = 0; i < tas->max_cores(); ++i) {
      items = items * 1000003 + tas->fastpath(i)->items_processed();
    }
    uint64_t hits = 0;
    for (const uint64_t h : tas->nic()->entry_hits()) {
      hits = hits * 1000003 + h;
    }
    FlowGroupSteering* steer = tas->steering();
    return std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, TimeNs>(
        items, hits, steer->group_moves(), steer->rebalances(),
        tas->stats().fastpath_rx_packets, exp->sim().Now());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tas
