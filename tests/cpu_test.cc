// Tests for the simulated CPU cores and the calibrated cost models.
#include <gtest/gtest.h>

#include "src/cpu/core.h"
#include "src/cpu/cost_model.h"

namespace tas {
namespace {

TEST(CoreTest, ChargeSerializesWork) {
  Simulator sim;
  Core core(&sim, 0, 1.0);  // 1 GHz: 1 cycle == 1 ns.
  const TimeNs first = core.Charge(CpuModule::kApp, 100);
  EXPECT_EQ(first, 100);
  // Second charge starts when the first finishes.
  const TimeNs second = core.Charge(CpuModule::kApp, 50);
  EXPECT_EQ(second, 150);
  EXPECT_EQ(core.busy_until(), 150);
}

TEST(CoreTest, ChargeAfterIdleStartsAtNow) {
  Simulator sim;
  Core core(&sim, 0, 1.0);
  core.Charge(CpuModule::kApp, 100);
  sim.At(1000, [&] {
    const TimeNs done = core.Charge(CpuModule::kApp, 10);
    EXPECT_EQ(done, 1010);
  });
  sim.Run();
}

TEST(CoreTest, FrequencyScalesDuration) {
  Simulator sim;
  Core fast(&sim, 0, 2.0);
  Core slow(&sim, 1, 1.0);
  EXPECT_EQ(fast.Charge(CpuModule::kTcp, 1000), 500);
  EXPECT_EQ(slow.Charge(CpuModule::kTcp, 1000), 1000);
}

TEST(CoreTest, ModuleAccounting) {
  Simulator sim;
  Core core(&sim, 0, 2.1);
  core.Charge(CpuModule::kDriver, 100);
  core.Charge(CpuModule::kTcp, 200);
  core.Charge(CpuModule::kTcp, 300);
  core.Account(CpuModule::kSockets, 50);
  EXPECT_EQ(core.cycles(CpuModule::kDriver), 100u);
  EXPECT_EQ(core.cycles(CpuModule::kTcp), 500u);
  EXPECT_EQ(core.cycles(CpuModule::kSockets), 50u);
  EXPECT_EQ(core.total_cycles(), 650u);
}

TEST(CoreTest, UtilizationWindow) {
  Simulator sim;
  Core core(&sim, 0, 1.0);
  const TimeNs busy0 = core.busy_ns();
  core.Charge(CpuModule::kApp, 500);  // 500ns busy.
  sim.At(1000, [&] {
    EXPECT_NEAR(core.Utilization(busy0, 0, sim.Now()), 0.5, 0.01);
  });
  sim.Run();
}

TEST(CoreTest, ResetAccountingClears) {
  Simulator sim;
  Core core(&sim, 0, 1.0);
  core.Charge(CpuModule::kApp, 100);
  core.ResetAccounting();
  EXPECT_EQ(core.total_cycles(), 0u);
  EXPECT_EQ(core.busy_ns(), 0);
}

TEST(CostModelTest, Table1TotalsMatchPaperBallpark) {
  // One request = rx + tx packet + both API ops + other.
  EXPECT_NEAR(static_cast<double>(LinuxCostModel().RequestCycles()), 16750 - 1070, 1500);
  EXPECT_NEAR(static_cast<double>(IxCostModel().RequestCycles()), 2730 - 760, 300);
  EXPECT_NEAR(static_cast<double>(TasSocketsCostModel().RequestCycles()), 2570 - 680, 500);
}

TEST(CostModelTest, LowLevelApiCheaperThanSockets) {
  EXPECT_LT(TasLowLevelCostModel().rx_api + TasLowLevelCostModel().tx_api,
            TasSocketsCostModel().rx_api + TasSocketsCostModel().tx_api);
  // Fast-path packet costs identical: only the API layer differs.
  EXPECT_EQ(TasLowLevelCostModel().rx_tcp, TasSocketsCostModel().rx_tcp);
}

TEST(CostModelTest, StackOrderingHolds) {
  // Per-request cost: Linux >> mTCP > IX > TAS.
  EXPECT_GT(LinuxCostModel().RequestCycles(), MtcpCostModel().RequestCycles());
  EXPECT_GT(MtcpCostModel().RequestCycles(), IxCostModel().RequestCycles());
  EXPECT_GT(IxCostModel().RequestCycles(), TasLowLevelCostModel().RequestCycles());
}

TEST(CacheModelTest, NoPenaltyWhenStateFits) {
  CacheModel cache;
  cache.per_connection_state_bytes = 256;
  cache.effective_cache_bytes = 1 << 20;
  cache.state_lines_per_packet = 4;
  EXPECT_EQ(cache.ExtraCyclesPerPacket(1000), 0u);  // 256 KB < 1 MB.
}

TEST(CacheModelTest, PenaltyGrowsWithConnections) {
  const CacheModel& cache = IxCostModel().cache;
  const uint64_t at_16k = cache.ExtraCyclesPerPacket(16000);
  const uint64_t at_64k = cache.ExtraCyclesPerPacket(64000);
  const uint64_t at_96k = cache.ExtraCyclesPerPacket(96000);
  EXPECT_LT(at_16k, at_64k);
  EXPECT_LT(at_64k, at_96k);
  // IX's Fig 4 cliff: extra cycles at 64K are a large fraction of its base
  // per-request cost.
  EXPECT_GT(at_64k * 2, IxCostModel().RequestCycles());
}

TEST(CacheModelTest, TasStaysFlatWherePeersDegrade) {
  const uint64_t tas = TasSocketsCostModel().cache.ExtraCyclesPerPacket(64000);
  const uint64_t ix = IxCostModel().cache.ExtraCyclesPerPacket(64000);
  const uint64_t linux = LinuxCostModel().cache.ExtraCyclesPerPacket(64000);
  EXPECT_LT(tas * 10, ix);
  EXPECT_LT(tas * 10, linux);
}

TEST(CostModelTest, MinimalModelIsTiny) {
  EXPECT_LT(MinimalCostModel().RequestCycles(), 200u);
  EXPECT_EQ(MinimalCostModel().cache.ExtraCyclesPerPacket(1000000), 0u);
}

}  // namespace
}  // namespace tas
