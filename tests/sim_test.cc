// Unit tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace tas {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] {
    ++fired;
    sim.After(5, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 15);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventHandle handle = sim.At(10, [&] { ++fired; });
  sim.At(5, [&] { handle.Cancel(); });
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(20, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SchedulingInPastIsFatal) {
  Simulator sim;
  sim.At(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(50, [] {}), "Check failed");
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, 10, [&] { ++fired; });
  task.Start();
  sim.RunUntil(95);
  EXPECT_EQ(fired, 9);
  task.Stop();
  sim.RunUntil(200);
  EXPECT_EQ(fired, 9);
}

TEST(PeriodicTaskTest, StopInsideCallback) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, 10, [&] {
    if (++fired == 3) {
      // Stopping from within the callback must not reschedule.
      sim.Stop();
    }
  });
  task.Start();
  sim.RunUntil(1000);
  task.Stop();
  sim.RunUntil(2000);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, EventCountTracked) {
  Simulator sim;
  for (int i = 0; i < 42; ++i) {
    sim.At(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 42u);
}

}  // namespace
}  // namespace tas
