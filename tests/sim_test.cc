// Unit tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "src/sim/simulator.h"

namespace tas {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.At(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] {
    ++fired;
    sim.After(5, [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 15);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventHandle handle = sim.At(10, [&] { ++fired; });
  sim.At(5, [&] { handle.Cancel(); });
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(20, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SchedulingInPastIsFatal) {
  Simulator sim;
  sim.At(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(50, [] {}), "Check failed");
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, 10, [&] { ++fired; });
  task.Start();
  sim.RunUntil(95);
  EXPECT_EQ(fired, 9);
  task.Stop();
  sim.RunUntil(200);
  EXPECT_EQ(fired, 9);
}

TEST(PeriodicTaskTest, StopInsideCallback) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(&sim, 10, [&] {
    if (++fired == 3) {
      // Stopping from within the callback must not reschedule.
      sim.Stop();
    }
  });
  task.Start();
  sim.RunUntil(1000);
  task.Stop();
  sim.RunUntil(2000);
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, EventCountTracked) {
  Simulator sim;
  for (int i = 0; i < 42; ++i) {
    sim.At(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 42u);
}


// --- Pooled event nodes and handle lifecycle (DESIGN.md §8) ----------------

TEST(EventHandleTest, InvalidAfterFire) {
  Simulator sim;
  EventHandle h = sim.At(10, [] {});
  EXPECT_TRUE(h.valid());
  sim.Run();
  EXPECT_FALSE(h.valid());
  h.Cancel();  // Must be a harmless no-op after the fact.
  EXPECT_EQ(sim.cancelled_events(), 0u);
}

TEST(EventHandleTest, InvalidAfterCancel) {
  Simulator sim;
  int fired = 0;
  EventHandle h = sim.At(10, [&] { ++fired; });
  h.Cancel();
  EXPECT_FALSE(h.valid());
  h.Cancel();  // Double-cancel counts once.
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.cancelled_events(), 1u);
  EXPECT_EQ(sim.cancelled_popped(), 1u);  // Lazy deletion skipped the entry.
}

TEST(EventHandleTest, StaleHandleDoesNotAliasRecycledNode) {
  // ABA safety: cancel an event, let its slab node be recycled by a new
  // event, then use the stale handle. The new tenant must be untouched.
  Simulator sim;
  int first = 0;
  int second = 0;
  EventHandle old = sim.At(10, [&] { ++first; });
  old.Cancel();
  // The freed node is head of the free list, so this reuses it.
  sim.At(20, [&] { ++second; });
  EXPECT_FALSE(old.valid());
  old.Cancel();  // Stale generation: must not kill the new tenant.
  sim.Run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(sim.cancelled_events(), 1u);
}

TEST(EventHandleTest, DefaultConstructedIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.valid());
  h.Cancel();
}

TEST(SimulatorTest, NodesAreRecycledNotLeaked) {
  Simulator sim;
  TimeNs when = 0;
  for (int i = 0; i < 1000; ++i) {
    sim.At(when, [] {});
    when += 10;
    sim.RunUntil(when);
  }
  // One event in flight at a time: the slab should stay tiny.
  EXPECT_LE(sim.event_nodes_total(), 4u);
  EXPECT_EQ(sim.event_nodes_free(), sim.event_nodes_total());
}

TEST(SimulatorTest, MoveOnlyCaptureIsDestroyedOnTeardown) {
  // An event still pending when the simulator dies must destroy its closure
  // (and anything the closure owns) — no leak, no double free.
  auto flag = std::make_shared<int>(7);
  std::weak_ptr<int> watch = flag;
  {
    Simulator sim;
    sim.At(1000, [owned = std::move(flag)] { (void)owned; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(SimulatorTest, LargeCaptureSpillsToHeapAndStillRuns) {
  // Captures past the inline SBO budget take the heap path; behavior must
  // be identical.
  Simulator sim;
  std::array<uint64_t, 16> big{};
  big[0] = 41;
  big[15] = 1;
  uint64_t out = 0;
  sim.At(5, [big, &out] { out = big[0] + big[15]; });
  sim.Run();
  EXPECT_EQ(out, 42u);
}

TEST(SimulatorTest, CancelHeavyChurnStaysOrdered) {
  // Exceed kPurgeMinEntries with tombstones so the compaction path runs,
  // then verify surviving events still pop in (time, insertion) order.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 400; ++i) {
    const TimeNs when = 10 + (i % 97);
    if (i % 2 == 0) {
      doomed.push_back(sim.At(when, [] { ADD_FAILURE() << "cancelled event ran"; }));
    } else {
      order.reserve(200);
      sim.At(when, [&order, i] { order.push_back(i); });
    }
  }
  for (EventHandle& h : doomed) {
    h.Cancel();
  }
  sim.Run();
  ASSERT_EQ(order.size(), 200u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end(),
                             [](int a, int b) { return (10 + a % 97) < (10 + b % 97) ||
                                                       ((10 + a % 97) == (10 + b % 97) && a < b); }));
  EXPECT_EQ(sim.cancelled_events(), 200u);
  // Every tombstone is eventually retired, popped or purged.
  EXPECT_EQ(sim.cancelled_popped(), 200u);
}

TEST(SimulatorTest, RearmCurrentReusesNode) {
  Simulator sim;
  int fired = 0;
  EventHandle h;
  sim.At(10, [&] {
    ++fired;
    if (fired < 3) {
      h = sim.RearmCurrent(sim.Now() + 10);
    }
  });
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.event_nodes_total(), 1u);  // One node served all three fires.
  EXPECT_FALSE(h.valid());
}

TEST(DeadlineTimerTest, FiresAtDeadline) {
  Simulator sim;
  int fired = 0;
  DeadlineTimer timer(&sim, [&] { ++fired; });
  timer.Schedule(100);
  sim.RunUntil(99);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(timer.armed());
  sim.RunUntil(100);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(DeadlineTimerTest, ForwardMoveIsLazy) {
  // Classic RTO pattern: push the deadline later on every "ACK". The single
  // in-queue event fires early and chases the final deadline.
  Simulator sim;
  std::vector<TimeNs> fire_times;
  DeadlineTimer timer(&sim, [&] { fire_times.push_back(sim.Now()); });
  timer.Schedule(100);
  sim.RunUntil(50);
  timer.Schedule(200);  // Field write; no new heap entry.
  sim.RunUntil(150);
  timer.Schedule(300);
  sim.Run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], 300);
  EXPECT_EQ(sim.cancelled_events(), 0u);  // Lazy moves never cancel.
}

TEST(DeadlineTimerTest, CancelIsLazyAndRearmable) {
  Simulator sim;
  int fired = 0;
  DeadlineTimer timer(&sim, [&] { ++fired; });
  timer.Schedule(100);
  timer.Cancel();
  sim.RunUntil(150);  // The orphan event pops and dies out.
  EXPECT_EQ(fired, 0);
  timer.Schedule(200);  // Re-arming after cancel works.
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(DeadlineTimerTest, DestructionCancelsPendingEvent) {
  Simulator sim;
  int fired = 0;
  {
    DeadlineTimer timer(&sim, [&] { ++fired; });
    timer.Schedule(100);
  }  // Dtor must kill the in-queue closure: it captures the dead timer.
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(DeadlineTimerTest, EarlierDeadlineWins) {
  Simulator sim;
  std::vector<TimeNs> fire_times;
  DeadlineTimer timer(&sim, [&] { fire_times.push_back(sim.Now()); });
  timer.Schedule(500);
  timer.Schedule(100);  // Moving earlier reschedules eagerly.
  sim.Run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], 100);
}

}  // namespace
}  // namespace tas
