// Flight recorder + SLO watchdog suite (DESIGN.md §15): a fault-injected
// chaos run must auto-produce a diagnostic bundle naming the breached SLO
// whose evidence window covers the injected fault; same-seed runs must
// produce byte-identical bundles at every sim_threads width; and an
// armed-but-untriggered run must leave the workload byte-identical to a
// recorder-off run (timing passivity).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/harness/experiment.h"
#include "src/tas/slow_path.h"
#include "src/tas/watchdog.h"
#include "src/trace/flight_recorder.h"

namespace tas {
namespace {

LinkConfig ChaosLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  return link;
}

HostSpec TasSpec() {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  return spec;
}

// Arms the watchdog with one aggressive retransmit-rate SLO: any sustained
// retransmission over two consecutive 2 ms checks triggers.
HostSpec ArmedClientSpec(const std::string& bundle_prefix, int sim_threads = 0) {
  HostSpec spec = TasSpec();
  spec.tas_overridden = true;
  spec.tas.sim_threads = sim_threads;
  spec.tas.watchdog.enabled = true;
  spec.tas.watchdog.check_interval = Ms(2);
  spec.tas.watchdog.recorder_window = Ms(20);
  spec.tas.watchdog.cooldown = Ms(50);
  spec.tas.watchdog.bundle_prefix = bundle_prefix;
  SloSpec slo;
  slo.name = "retransmit_rate";
  slo.kind = SloKind::kRetransmitRate;
  slo.threshold = 50.0;  // Retransmits per second.
  slo.burn_windows = 2;
  slo.min_count = 1;
  spec.tas.watchdog.slos.push_back(slo);
  return spec;
}

// Minimal app pair (mirrors chaos_test.cc).
class RecordingServer : public AppHandler {
 public:
  RecordingServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    received_ += stack_->Recv(conn, buf.data(), bytes);
  }
  void OnRemoteClosed(ConnId conn) override { stack_->Close(conn); }

  Stack* stack_;
  uint16_t port_;
  size_t received_ = 0;
};

class PatternClient : public AppHandler {
 public:
  PatternClient(Stack* stack, IpAddr server, uint16_t port, size_t total)
      : stack_(stack), server_(server), port_(port), total_(total) {}
  void Start() {
    stack_->SetHandler(this);
    conn_ = stack_->Connect(server_, port_);
  }
  void OnConnected(ConnId conn, bool success) override {
    if (success) {
      Pump(conn);
    }
  }
  void OnSendSpace(ConnId conn, size_t bytes) override {
    acked_ += bytes;
    Pump(conn);
    if (sent_ >= total_ && acked_ >= total_ && !closed_) {
      closed_ = true;
      stack_->Close(conn);
    }
  }
  void Pump(ConnId conn) {
    while (sent_ < total_) {
      uint8_t chunk[997];
      const size_t want = std::min(sizeof(chunk), total_ - sent_);
      for (size_t i = 0; i < want; ++i) {
        chunk[i] = static_cast<uint8_t>((sent_ + i) % 251);
      }
      const size_t n = stack_->Send(conn, chunk, want);
      sent_ += n;
      if (n < want) {
        break;
      }
    }
  }

  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  size_t total_;
  ConnId conn_ = kInvalidConn;
  size_t sent_ = 0;
  size_t acked_ = 0;
  bool closed_ = false;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void RemoveBundle(const std::string& prefix, int bundles) {
  for (int k = 0; k < bundles; ++k) {
    const std::string base = prefix + ".bundle" + std::to_string(k);
    std::remove((base + ".json").c_str());
    std::remove((base + ".jsonl").c_str());
    std::remove((base + ".perfetto.json").c_str());
  }
}

// Workload-facing fingerprint: transfer totals, retransmission machinery,
// link-level packet/byte/drop counts. Deliberately excludes events_executed —
// the armed watchdog adds periodic *check* events without changing any
// workload outcome.
std::string WorkloadFingerprint(Experiment& exp, size_t received) {
  std::ostringstream out;
  out << "received=" << received;
  for (size_t i = 0; i < 2; ++i) {
    const TasStats& s = exp.host(i).tas()->stats();
    out << "|h" << i << ':' << s.fastpath_rx_packets << ':' << s.fastpath_tx_packets
        << ':' << s.fastpath_acks_sent << ':' << s.fast_retransmits << ':'
        << s.timeout_retransmits << ':' << s.handshake_retransmits << ':'
        << s.rx_buffer_drops << ':' << s.ooo_accepted << ':' << s.ooo_dropped << ':'
        << s.connections_established << ':' << s.connections_closed;
  }
  const Link& link = *exp.host_link(0);
  for (int side = 0; side < 2; ++side) {
    const LinkStats& s = link.stats(side);
    out << "|l" << side << ':' << s.tx_packets << ':' << s.tx_bytes << ':'
        << s.drops_induced << ':' << s.drops_overflow;
  }
  return out.str();
}

struct ChaosRun {
  std::vector<SloTrigger> triggers;
  int bundles_written = 0;
  std::string bundle_json;      // <prefix>.bundle0.json
  std::string bundle_jsonl;     // <prefix>.bundle0.jsonl
  std::string bundle_perfetto;  // <prefix>.bundle0.perfetto.json
  std::string fingerprint;
  uint64_t checks = 0;
};

// The chaos_test total-loss scenario with the client host armed: slow link,
// wire black in both directions over [2 ms, 12 ms] mid-transfer, so the
// slow-path RTO fires timeout retransmits — a sustained retransmit-rate
// breach the watchdog must catch.
ChaosRun RunArmedChaos(const std::string& prefix, int sim_threads = 0,
                       bool inject_fault = true) {
  LinkConfig slow = ChaosLink();
  slow.gbps = 0.1;
  HostSpec server_spec = TasSpec();
  server_spec.tas_overridden = true;
  server_spec.tas.sim_threads = sim_threads;
  auto exp = Experiment::PointToPoint(server_spec, ArmedClientSpec(prefix, sim_threads),
                                      slow);
  if (inject_fault) {
    FaultSchedule chaos;
    chaos.ImpairmentWindowBoth(Ms(2), Ms(12), exp->host_link(0), BernoulliLoss(1.0));
    exp->faults().Install(chaos);
  }

  RecordingServer server(exp->host(0).stack(), 7000);
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 120000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ChaosRun run;
  FlightRecorder* recorder = exp->host(1).tas()->owned_recorder();
  EXPECT_NE(recorder, nullptr);
  EXPECT_EQ(FlightRecorder::Current(), recorder);
  run.triggers = recorder->triggers();
  run.bundles_written = recorder->bundles_written();
  run.fingerprint = WorkloadFingerprint(*exp, server.received_);
  run.checks = exp->host(1).tas()->watchdog()->checks();
  if (!prefix.empty() && run.bundles_written > 0) {
    run.bundle_json = ReadFile(prefix + ".bundle0.json");
    run.bundle_jsonl = ReadFile(prefix + ".bundle0.jsonl");
    run.bundle_perfetto = ReadFile(prefix + ".bundle0.perfetto.json");
  }
  return run;
}

// --- The acceptance scenario: fault in, bundle out ---------------------------

TEST(WatchdogTest, FaultedChaosRunTriggersBundleNamingTheBreachedSlo) {
  const std::string prefix = "/tmp/tas_watchdog_accept";
  const ChaosRun run = RunArmedChaos(prefix);

  // The breach fired, was attributed to the armed host, and named the SLO.
  ASSERT_GE(run.triggers.size(), 1u);
  const SloTrigger& t = run.triggers[0];
  EXPECT_EQ(t.slo, "retransmit_rate");
  EXPECT_EQ(t.kind, SloKind::kRetransmitRate);
  EXPECT_EQ(t.source, "h1");
  EXPECT_GT(t.measured, t.threshold);
  EXPECT_EQ(t.burn_windows, 2);
  EXPECT_EQ(t.bundle, 0);

  // Evidence window covers the injected fault interval's onset: the loss
  // window opens at 2 ms and the 20 ms recorder window reaches back past it.
  EXPECT_LE(t.window_from, Ms(2));
  EXPECT_GE(t.window_to, Ms(4));
  EXPECT_LE(t.window_to, Ms(30));  // Triggered during/near the fault, not at the end.

  // All three bundle files landed and carry the evidence.
  EXPECT_GE(run.bundles_written, 1);
  EXPECT_NE(run.bundle_json.find("\"slo\":\"retransmit_rate\""), std::string::npos);
  EXPECT_NE(run.bundle_json.find("\"source\":\"h1\""), std::string::npos);
  EXPECT_NE(run.bundle_json.find("\"flow_table\""), std::string::npos);
  EXPECT_NE(run.bundle_json.find("\"steering\""), std::string::npos);
  EXPECT_NE(run.bundle_json.find("\"slow_path\""), std::string::npos);
  // The window's flow events include the RTO firing inside the fault window.
  EXPECT_NE(run.bundle_jsonl.find("\"type\":\"timeout_retransmit\""), std::string::npos);
  EXPECT_NE(run.bundle_jsonl.find("\"stream\":\"slo\""), std::string::npos);
  EXPECT_NE(run.bundle_perfetto.find("\"slo-trigger\""), std::string::npos);

  // The trigger JSON round-trips the machine-readable fields.
  const std::string json = SloTriggerToJson(t);
  EXPECT_NE(json.find("\"slo\":\"retransmit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"window_from\":"), std::string::npos);

  RemoveBundle(prefix, run.bundles_written);
}

TEST(WatchdogTest, CleanRunDoesNotTrigger) {
  const std::string prefix = "/tmp/tas_watchdog_clean";
  const ChaosRun run = RunArmedChaos(prefix, 0, /*inject_fault=*/false);
  EXPECT_GT(run.checks, 0u);
  EXPECT_EQ(run.triggers.size(), 0u);
  EXPECT_EQ(run.bundles_written, 0);
  EXPECT_TRUE(ReadFile(prefix + ".bundle0.json").empty());
}

// --- Determinism: same seed => byte-identical bundles ------------------------

TEST(WatchdogTest, SameSeedRerunsProduceByteIdenticalBundles) {
  const ChaosRun a = RunArmedChaos("/tmp/tas_watchdog_rerun_a");
  const ChaosRun b = RunArmedChaos("/tmp/tas_watchdog_rerun_b");
  ASSERT_GE(a.triggers.size(), 1u);
  ASSERT_EQ(a.triggers.size(), b.triggers.size());
  EXPECT_EQ(SloTriggerToJson(a.triggers[0]), SloTriggerToJson(b.triggers[0]));
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_FALSE(a.bundle_json.empty());
  EXPECT_EQ(a.bundle_json, b.bundle_json);
  EXPECT_EQ(a.bundle_jsonl, b.bundle_jsonl);
  EXPECT_EQ(a.bundle_perfetto, b.bundle_perfetto);
  RemoveBundle("/tmp/tas_watchdog_rerun_a", a.bundles_written);
  RemoveBundle("/tmp/tas_watchdog_rerun_b", b.bundles_written);
}

TEST(WatchdogTest, BundlesByteIdenticalAcrossSimThreadWidths) {
  // The partitioned schedule is canonical for every thread count, and bundle
  // serialization happens at the epoch boundary — so widths 1, 2, and 4 must
  // produce the same bundle bytes (width-dependent metrics are excluded).
  std::vector<ChaosRun> runs;
  for (int width : {1, 2, 4}) {
    const std::string prefix = "/tmp/tas_watchdog_w" + std::to_string(width);
    runs.push_back(RunArmedChaos(prefix, width));
  }
  ASSERT_GE(runs[0].triggers.size(), 1u);
  ASSERT_FALSE(runs[0].bundle_json.empty());
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[0].fingerprint, runs[i].fingerprint) << "width index " << i;
    ASSERT_EQ(runs[0].triggers.size(), runs[i].triggers.size());
    for (size_t k = 0; k < runs[0].triggers.size(); ++k) {
      EXPECT_EQ(SloTriggerToJson(runs[0].triggers[k]),
                SloTriggerToJson(runs[i].triggers[k]));
    }
    EXPECT_EQ(runs[0].bundle_json, runs[i].bundle_json) << "width index " << i;
    EXPECT_EQ(runs[0].bundle_jsonl, runs[i].bundle_jsonl) << "width index " << i;
    EXPECT_EQ(runs[0].bundle_perfetto, runs[i].bundle_perfetto) << "width index " << i;
  }
  for (int width : {1, 2, 4}) {
    RemoveBundle("/tmp/tas_watchdog_w" + std::to_string(width), runs[0].bundles_written);
  }
}

// --- Passivity: armed-but-untriggered == recorder-off ------------------------

TEST(WatchdogTest, ArmedUntriggeredRunIsWorkloadIdenticalToRecorderOff) {
  auto run_one = [](bool armed) {
    HostSpec client = TasSpec();
    if (armed) {
      client.tas_overridden = true;
      client.tas.watchdog.enabled = true;  // Default (conservative) SLO set,
                                           // in-memory only: no bundle prefix.
    }
    auto exp = Experiment::PointToPoint(TasSpec(), client, ChaosLink());
    RecordingServer server(exp->host(0).stack(), 7000);
    PatternClient pattern(exp->host(1).stack(), exp->host(0).ip(), 7000, 200000);
    server.Start();
    pattern.Start();
    exp->sim().RunUntil(Sec(10));

    if (armed) {
      FlightRecorder* recorder = exp->host(1).tas()->owned_recorder();
      EXPECT_NE(recorder, nullptr);
      // Armed, watching, recording — and silent.
      EXPECT_GT(recorder->recorded(RecorderStream::kFlow), 0u);
      EXPECT_GT(recorder->recorded(RecorderStream::kSlo), 0u);
      EXPECT_EQ(recorder->triggers().size(), 0u);
      EXPECT_EQ(recorder->bundles_written(), 0);
      EXPECT_GT(exp->host(1).tas()->watchdog()->checks(), 0u);
      EXPECT_EQ(exp->host(1).tas()->watchdog()->triggers_fired(), 0u);
    } else {
      EXPECT_EQ(exp->host(1).tas()->owned_recorder(), nullptr);
    }
    return WorkloadFingerprint(*exp, server.received_);
  };
  const std::string off = run_one(false);
  const std::string armed = run_one(true);
  EXPECT_EQ(off, armed);
}

// --- Recorder mechanics ------------------------------------------------------

TEST(WatchdogTest, RecorderRingOverwritesOldestAndCapturesSortedWindow) {
  WatchdogConfig config;
  config.flow_ring_capacity = 4;
  config.latency_ring_capacity = 4;
  FlightRecorder recorder(config);
  ASSERT_EQ(FlightRecorder::Install(&recorder), nullptr);

  for (uint64_t i = 0; i < 6; ++i) {
    FlowEvent e;
    e.t = static_cast<TimeNs>(100 * (i + 1));
    e.flow = i;
    e.type = FlowEventType::kDataTx;
    recorder.RecordFlowEvent(e);
  }
  recorder.RecordLatency(250, 1000, 200, 300);

  EXPECT_EQ(recorder.recorded(RecorderStream::kFlow), 6u);
  EXPECT_EQ(recorder.overwritten(RecorderStream::kFlow), 2u);
  EXPECT_EQ(recorder.recorded(RecorderStream::kLatency), 1u);
  EXPECT_EQ(recorder.overwritten(RecorderStream::kLatency), 0u);

  // Window [300, 600]: flows 0 and 1 were overwritten anyway; 2..5 retained;
  // the latency record at t=250 is outside. Merged result is time-sorted.
  const std::vector<RecorderRecord> window = recorder.CaptureWindow(300, 600);
  ASSERT_EQ(window.size(), 4u);
  for (size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].stream, RecorderStream::kFlow);
    EXPECT_EQ(window[i].a, i + 2);  // Flow id payload slot.
    if (i > 0) {
      EXPECT_GE(window[i].t, window[i - 1].t);
    }
  }
  // Tighter window clips both ends.
  EXPECT_EQ(recorder.CaptureWindow(400, 500).size(), 2u);
  // The latency record is found by its own window.
  const std::vector<RecorderRecord> lat = recorder.CaptureWindow(200, 260);
  ASSERT_EQ(lat.size(), 1u);
  EXPECT_EQ(lat[0].stream, RecorderStream::kLatency);
  EXPECT_EQ(lat[0].a, 1000u);

  FlightRecorder::Install(nullptr);
}

TEST(WatchdogTest, TriggerWithoutPrefixIsRecordedButNotSerialized) {
  WatchdogConfig config;  // bundle_prefix empty.
  FlightRecorder recorder(config);
  ASSERT_EQ(FlightRecorder::Install(&recorder), nullptr);

  SloTrigger trigger;
  trigger.slo = "test";
  trigger.kind = SloKind::kSlowPathQueueDepth;
  trigger.measured = 10;
  trigger.threshold = 1;
  trigger.t = Ms(5);
  trigger.window_from = 0;
  trigger.window_to = Ms(5);
  trigger.source = "h0";
  recorder.Trigger(trigger, [] { return std::string("{}"); });

  ASSERT_EQ(recorder.triggers().size(), 1u);
  EXPECT_EQ(recorder.bundles_written(), 0);
  EXPECT_EQ(recorder.triggers()[0].bundle, -1);

  FlightRecorder::Install(nullptr);
}

// --- Satellite: per-type drop attribution ------------------------------------

TEST(WatchdogTest, FlowTracerAttributesOverwritesToTheEvictedType) {
  FlowTracer tracer(4);
  tracer.SetGlobal(true);
  // Fill with ack_rx, then push data_tx until every ack_rx is evicted.
  for (int i = 0; i < 4; ++i) {
    tracer.Record(i, 1, FlowEventType::kAckRx);
  }
  for (int i = 0; i < 3; ++i) {
    tracer.Record(10 + i, 1, FlowEventType::kDataTx);
  }
  EXPECT_EQ(tracer.overwritten(), 3u);
  // The *lost* records were ack_rx — attribution names them, not data_tx.
  EXPECT_EQ(tracer.overwritten_by_type(FlowEventType::kAckRx), 3u);
  EXPECT_EQ(tracer.overwritten_by_type(FlowEventType::kDataTx), 0u);
  // One more wraps onto the first data_tx.
  tracer.Record(20, 1, FlowEventType::kCcUpdate);
  EXPECT_EQ(tracer.overwritten_by_type(FlowEventType::kAckRx), 4u);
  tracer.Record(21, 1, FlowEventType::kCcUpdate);
  EXPECT_EQ(tracer.overwritten_by_type(FlowEventType::kDataTx), 1u);
}

}  // namespace
}  // namespace tas
