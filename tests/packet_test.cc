// Tests for packet headers, wire serialization, checksums and flow hashing.
#include <gtest/gtest.h>

#include "src/net/packet.h"
#include "src/util/rng.h"

namespace tas {
namespace {

PacketPtr SamplePacket() {
  auto pkt = MakeTcpPacket(MakeIp(10, 0, 0, 1), 12345, MakeIp(10, 0, 0, 2), 80, 1000, 2000,
                           TcpFlags::kAck | TcpFlags::kPsh, {1, 2, 3, 4, 5});
  pkt->tcp.window = 4096;
  pkt->ip.ecn = Ecn::kEct0;
  return pkt;
}

TEST(PacketTest, IpToString) {
  EXPECT_EQ(IpToString(MakeIp(10, 1, 2, 3)), "10.1.2.3");
  EXPECT_EQ(IpToString(MakeIp(255, 255, 255, 255)), "255.255.255.255");
}

TEST(PacketTest, WireBytesAccounting) {
  auto pkt = SamplePacket();
  // 14 eth + 20 ip + 20 tcp + 5 payload, no options.
  EXPECT_EQ(pkt->WireBytes(), 59u);
  pkt->tcp.has_timestamps = true;
  EXPECT_EQ(pkt->tcp.OptionBytes(), 12u);  // 10 padded to 12.
  EXPECT_EQ(pkt->WireBytes(), 71u);
}

TEST(PacketTest, SerializeParseRoundTrip) {
  auto pkt = SamplePacket();
  pkt->tcp.has_timestamps = true;
  pkt->tcp.ts_val = 111;
  pkt->tcp.ts_ecr = 222;
  const auto bytes = Serialize(*pkt);
  EXPECT_EQ(bytes.size(), pkt->WireBytes());
  auto parsed = Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, pkt->ip.src);
  EXPECT_EQ(parsed->ip.dst, pkt->ip.dst);
  EXPECT_EQ(parsed->ip.ecn, Ecn::kEct0);
  EXPECT_EQ(parsed->tcp.src_port, 12345);
  EXPECT_EQ(parsed->tcp.dst_port, 80);
  EXPECT_EQ(parsed->tcp.seq, 1000u);
  EXPECT_EQ(parsed->tcp.ack, 2000u);
  EXPECT_EQ(parsed->tcp.flags, pkt->tcp.flags);
  EXPECT_EQ(parsed->tcp.window, 4096);
  EXPECT_TRUE(parsed->tcp.has_timestamps);
  EXPECT_EQ(parsed->tcp.ts_val, 111u);
  EXPECT_EQ(parsed->tcp.ts_ecr, 222u);
  EXPECT_EQ(parsed->payload, pkt->payload);
}

TEST(PacketTest, SynOptionsRoundTrip) {
  auto pkt = MakeTcpPacket(MakeIp(10, 0, 0, 1), 1, MakeIp(10, 0, 0, 2), 2, 42, 0,
                           TcpFlags::kSyn);
  pkt->tcp.has_mss = true;
  pkt->tcp.mss = 1448;
  pkt->tcp.has_wscale = true;
  pkt->tcp.wscale = 7;
  auto parsed = Parse(Serialize(*pkt));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->tcp.has_mss);
  EXPECT_EQ(parsed->tcp.mss, 1448);
  EXPECT_TRUE(parsed->tcp.has_wscale);
  EXPECT_EQ(parsed->tcp.wscale, 7);
  EXPECT_TRUE(parsed->tcp.syn());
}

TEST(PacketTest, SackBlocksRoundTrip) {
  auto pkt = MakeTcpPacket(MakeIp(1, 1, 1, 1), 5, MakeIp(2, 2, 2, 2), 6, 0, 77,
                           TcpFlags::kAck);
  pkt->tcp.num_sack = 2;
  pkt->tcp.sack[0] = {100, 200};
  pkt->tcp.sack[1] = {300, 450};
  auto parsed = Parse(Serialize(*pkt));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->tcp.num_sack, 2);
  EXPECT_EQ(parsed->tcp.sack[0].start, 100u);
  EXPECT_EQ(parsed->tcp.sack[0].end, 200u);
  EXPECT_EQ(parsed->tcp.sack[1].start, 300u);
  EXPECT_EQ(parsed->tcp.sack[1].end, 450u);
}

TEST(PacketTest, CorruptionDetected) {
  auto bytes = Serialize(*SamplePacket());
  // Flip a payload bit: TCP checksum must fail.
  bytes[bytes.size() - 1] ^= 0x01;
  EXPECT_FALSE(Parse(bytes).has_value());
}

TEST(PacketTest, IpHeaderCorruptionDetected) {
  auto bytes = Serialize(*SamplePacket());
  bytes[14 + 8] ^= 0xFF;  // TTL byte inside the IP header.
  EXPECT_FALSE(Parse(bytes).has_value());
}

TEST(PacketTest, TruncatedRejected) {
  auto bytes = Serialize(*SamplePacket());
  bytes.resize(30);
  EXPECT_FALSE(Parse(bytes).has_value());
}

TEST(PacketTest, ChecksumKnownVector) {
  // RFC 1071 example: {0x0001, 0xf203, 0xf4f5, 0xf6f7} -> sum 2ddf0 ->
  // carry-folded ddf2 -> complement 220d.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0x220d);
}

TEST(PacketTest, RandomRoundTripProperty) {
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    auto pkt = MakeTcpPacket(static_cast<IpAddr>(rng.Next()),
                             static_cast<uint16_t>(rng.Next()),
                             static_cast<IpAddr>(rng.Next()),
                             static_cast<uint16_t>(rng.Next()),
                             static_cast<uint32_t>(rng.Next()),
                             static_cast<uint32_t>(rng.Next()),
                             static_cast<uint8_t>(rng.Next() & 0xDF));  // No URG.
    const size_t len = rng.NextUint64(1460);
    pkt->payload.resize(len);
    for (auto& b : pkt->payload) {
      b = static_cast<uint8_t>(rng.Next());
    }
    if (rng.NextBool(0.5)) {
      pkt->tcp.has_timestamps = true;
      pkt->tcp.ts_val = static_cast<uint32_t>(rng.Next());
      pkt->tcp.ts_ecr = static_cast<uint32_t>(rng.Next());
    }
    auto parsed = Parse(Serialize(*pkt));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tcp.seq, pkt->tcp.seq);
    EXPECT_EQ(parsed->payload, pkt->payload);
  }
}

TEST(FlowHashTest, SymmetricHashMatchesBothDirections) {
  const IpAddr a = MakeIp(10, 0, 0, 1);
  const IpAddr b = MakeIp(10, 0, 0, 2);
  EXPECT_EQ(SymmetricFlowHash(a, 100, b, 200), SymmetricFlowHash(b, 200, a, 100));
  EXPECT_NE(SymmetricFlowHash(a, 100, b, 200), SymmetricFlowHash(a, 101, b, 200));
}

TEST(FlowHashTest, DirectionalHashSpreads) {
  // Hash values over many flows should cover many buckets.
  std::vector<int> buckets(16, 0);
  for (uint16_t port = 1000; port < 2000; ++port) {
    buckets[FlowHash(MakeIp(10, 0, 0, 1), port, MakeIp(10, 0, 0, 2), 80) % 16]++;
  }
  for (int count : buckets) {
    EXPECT_GT(count, 20);  // Roughly uniform (62.5 expected).
  }
}

TEST(PacketTest, DescribeContainsEndpoints) {
  auto pkt = SamplePacket();
  const std::string desc = pkt->Describe();
  EXPECT_NE(desc.find("10.0.0.1:12345"), std::string::npos);
  EXPECT_NE(desc.find("10.0.0.2:80"), std::string::npos);
}

}  // namespace
}  // namespace tas
