// Tests for the network substrate: links (timing, ordering, ECN, drops, loss
// injection), switches (forwarding, ECMP stability), the NIC (RSS steering,
// ring overflow, notifications), and topology routing.
#include <gtest/gtest.h>

#include "src/net/topology.h"
#include "src/nic/nic.h"

namespace tas {
namespace {

class CollectingDevice : public NetDevice {
 public:
  void Receive(PacketPtr pkt) override {
    arrival_times.push_back(last_time_fn ? last_time_fn() : 0);
    packets.push_back(std::move(pkt));
  }
  std::function<TimeNs()> last_time_fn;
  std::vector<PacketPtr> packets;
  std::vector<TimeNs> arrival_times;
};

PacketPtr DataPacket(size_t payload = 1000, IpAddr dst = MakeIp(10, 0, 0, 2)) {
  auto pkt = MakeTcpPacket(MakeIp(10, 0, 0, 1), 1000, dst, 2000, 0, 0, TcpFlags::kAck,
                           std::vector<uint8_t>(payload));
  pkt->ip.ecn = Ecn::kEct0;
  return pkt;
}

TEST(LinkTest, DeliveryTiming) {
  Simulator sim;
  LinkConfig config;
  config.gbps = 10.0;
  config.propagation_delay = Us(5);
  Link link(&sim, config);
  CollectingDevice dev;
  dev.last_time_fn = [&sim] { return sim.Now(); };
  link.Attach(1, &dev);

  auto pkt = DataPacket(1000);
  const TimeNs serialize = TransmitTimeNs(pkt->WireBytes(), 10.0);
  link.Send(0, std::move(pkt));
  sim.Run();
  ASSERT_EQ(dev.packets.size(), 1u);
  EXPECT_EQ(dev.arrival_times[0], serialize + Us(5));
}

TEST(LinkTest, FifoOrderPreserved) {
  Simulator sim;
  LinkConfig config;
  Link link(&sim, config);
  CollectingDevice dev;
  link.Attach(1, &dev);
  for (uint32_t i = 0; i < 50; ++i) {
    auto pkt = DataPacket(100);
    pkt->tcp.seq = i;
    link.Send(0, std::move(pkt));
  }
  sim.Run();
  ASSERT_EQ(dev.packets.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(dev.packets[i]->tcp.seq, i);
  }
}

TEST(LinkTest, BackToBackPipelining) {
  // Two packets sent together: second arrives one serialization later.
  Simulator sim;
  LinkConfig config;
  config.gbps = 1.0;  // Slow link makes serialization visible.
  config.propagation_delay = Us(1);
  Link link(&sim, config);
  CollectingDevice dev;
  dev.last_time_fn = [&sim] { return sim.Now(); };
  link.Attach(1, &dev);
  const TimeNs ser = TransmitTimeNs(DataPacket(1000)->WireBytes(), 1.0);
  link.Send(0, DataPacket(1000));
  link.Send(0, DataPacket(1000));
  sim.Run();
  ASSERT_EQ(dev.packets.size(), 2u);
  EXPECT_EQ(dev.arrival_times[1] - dev.arrival_times[0], ser);
}

TEST(LinkTest, OverflowDropsTail) {
  Simulator sim;
  LinkConfig config;
  config.queue_limit_pkts = 4;
  Link link(&sim, config);
  CollectingDevice dev;
  link.Attach(1, &dev);
  for (int i = 0; i < 20; ++i) {
    link.Send(0, DataPacket(1000));
  }
  sim.Run();
  // 1 in flight + 4 queued accepted at burst time; rest dropped.
  EXPECT_EQ(dev.packets.size(), 5u);
  EXPECT_EQ(link.stats(0).drops_overflow, 15u);
}

TEST(LinkTest, EcnMarkedAboveThreshold) {
  Simulator sim;
  LinkConfig config;
  config.ecn_threshold_pkts = 3;
  config.queue_limit_pkts = 100;
  Link link(&sim, config);
  CollectingDevice dev;
  link.Attach(1, &dev);
  for (int i = 0; i < 10; ++i) {
    link.Send(0, DataPacket(1000));
  }
  sim.Run();
  ASSERT_EQ(dev.packets.size(), 10u);
  int marked = 0;
  for (const auto& pkt : dev.packets) {
    if (pkt->ip.ecn == Ecn::kCe) {
      ++marked;
    }
  }
  // Packet 0 starts transmitting immediately; packet i>=1 sees i-1 queued.
  // Occupancies >= 3 are seen by packets 4..9: six marks.
  EXPECT_EQ(marked, 6);
  EXPECT_EQ(link.stats(0).ecn_marks, 6u);
}

TEST(LinkTest, NotEctNeverMarked) {
  Simulator sim;
  LinkConfig config;
  config.ecn_threshold_pkts = 1;
  Link link(&sim, config);
  CollectingDevice dev;
  link.Attach(1, &dev);
  for (int i = 0; i < 5; ++i) {
    auto pkt = DataPacket(1000);
    pkt->ip.ecn = Ecn::kNotEct;
    link.Send(0, std::move(pkt));
  }
  sim.Run();
  for (const auto& pkt : dev.packets) {
    EXPECT_EQ(pkt->ip.ecn, Ecn::kNotEct);
  }
}

TEST(LinkTest, InducedLossRate) {
  Simulator sim;
  LinkConfig config;
  config.faults.Add(BernoulliLoss(0.3));
  config.queue_limit_pkts = 100000;
  Link link(&sim, config);
  CollectingDevice dev;
  link.Attach(1, &dev);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    link.Send(0, DataPacket(10));
  }
  sim.Run();
  const double loss =
      static_cast<double>(link.stats(0).drops_induced) / static_cast<double>(n);
  EXPECT_NEAR(loss, 0.3, 0.02);
  // The per-impairment stats agree with the link-level aggregate.
  ASSERT_EQ(link.pipeline(0).size(), 1u);
  EXPECT_EQ(link.pipeline(0).at(0)->stats().dropped, link.stats(0).drops_induced);
  EXPECT_EQ(link.pipeline(0).at(0)->stats().processed, static_cast<uint64_t>(n));
}

TEST(LinkTest, LegacyDropRateShimStillInducesLoss) {
  Simulator sim;
  LinkConfig config;
  config.drop_rate = 0.5;
  config.queue_limit_pkts = 100000;
  Link link(&sim, config);
  CollectingDevice dev;
  link.Attach(1, &dev);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    link.Send(0, DataPacket(10));
  }
  sim.Run();
  const double loss =
      static_cast<double>(link.stats(0).drops_induced) / static_cast<double>(n);
  EXPECT_NEAR(loss, 0.5, 0.03);
  // The shim can be retargeted at runtime.
  link.set_drop_rate(0.0);
  const uint64_t drops_before = link.stats(0).drops_induced;
  for (int i = 0; i < 1000; ++i) {
    link.Send(0, DataPacket(10));
  }
  sim.Run();
  EXPECT_EQ(link.stats(0).drops_induced, drops_before);
}

TEST(LinkTest, DirectionsIndependent) {
  Simulator sim;
  LinkConfig config;
  Link link(&sim, config);
  CollectingDevice dev0;
  CollectingDevice dev1;
  link.Attach(0, &dev0);
  link.Attach(1, &dev1);
  link.Send(0, DataPacket());
  link.Send(1, DataPacket());
  sim.Run();
  EXPECT_EQ(dev0.packets.size(), 1u);
  EXPECT_EQ(dev1.packets.size(), 1u);
}

TEST(StarTopologyTest, HostsCanReachEachOther) {
  Simulator sim;
  std::vector<LinkConfig> links(3);
  auto net = MakeStar(&sim, links);
  ASSERT_EQ(net->num_hosts(), 3u);
  CollectingDevice devs[3];
  for (int i = 0; i < 3; ++i) {
    net->host(i).end.Attach(&devs[i]);
  }
  // Host 0 -> host 2.
  net->host(0).end.Send(DataPacket(100, net->host(2).ip));
  sim.Run();
  EXPECT_EQ(devs[2].packets.size(), 1u);
  EXPECT_EQ(devs[0].packets.size(), 0u);
  EXPECT_EQ(devs[1].packets.size(), 0u);
}

TEST(DumbbellTest, CrossTrafficTraversesBottleneck) {
  Simulator sim;
  LinkConfig host_link;
  LinkConfig bottleneck;
  bottleneck.gbps = 1.0;
  auto net = MakeDumbbell(&sim, 2, 2, host_link, bottleneck);
  ASSERT_EQ(net->num_hosts(), 4u);
  CollectingDevice devs[4];
  for (int i = 0; i < 4; ++i) {
    net->host(i).end.Attach(&devs[i]);
  }
  net->host(0).end.Send(DataPacket(100, net->host(2).ip));
  net->host(3).end.Send(DataPacket(100, net->host(1).ip));
  sim.Run();
  EXPECT_EQ(devs[2].packets.size(), 1u);
  EXPECT_EQ(devs[1].packets.size(), 1u);
}

TEST(FatTreeTest, AllPairsReachable) {
  Simulator sim;
  FatTreeConfig config;
  config.k = 4;
  config.hosts_per_edge = 2;
  auto net = MakeFatTree(&sim, config);
  // k=4: 16 hosts (2 per edge, 2 edges per pod, 4 pods), 4+8+8=20 switches.
  ASSERT_EQ(net->num_hosts(), 16u);
  EXPECT_EQ(net->num_switches(), 20u);

  std::vector<CollectingDevice> devs(net->num_hosts());
  for (size_t i = 0; i < net->num_hosts(); ++i) {
    net->host(i).end.Attach(&devs[i]);
  }
  for (size_t i = 0; i < net->num_hosts(); ++i) {
    for (size_t j = 0; j < net->num_hosts(); ++j) {
      if (i != j) {
        net->host(i).end.Send(DataPacket(10, net->host(j).ip));
      }
    }
  }
  sim.Run();
  for (size_t j = 0; j < net->num_hosts(); ++j) {
    EXPECT_EQ(devs[j].packets.size(), net->num_hosts() - 1) << "host " << j;
  }
}

TEST(FatTreeTest, EcmpKeepsFlowOnOnePath) {
  // Same 4-tuple must never be reordered across the fabric: send a burst and
  // verify order at the destination.
  Simulator sim;
  FatTreeConfig config;
  config.k = 4;
  config.hosts_per_edge = 1;
  auto net = MakeFatTree(&sim, config);
  std::vector<CollectingDevice> devs(net->num_hosts());
  for (size_t i = 0; i < net->num_hosts(); ++i) {
    net->host(i).end.Attach(&devs[i]);
  }
  const size_t dst = net->num_hosts() - 1;  // A different pod than host 0.
  for (uint32_t i = 0; i < 100; ++i) {
    auto pkt = DataPacket(100, net->host(dst).ip);
    pkt->tcp.seq = i;
    net->host(0).end.Send(std::move(pkt));
  }
  sim.Run();
  ASSERT_EQ(devs[dst].packets.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(devs[dst].packets[i]->tcp.seq, i);
  }
}

TEST(NicTest, RssSteersFlowsConsistently) {
  Simulator sim;
  LinkConfig link_config;
  auto net = MakePointToPoint(&sim, link_config);
  NicConfig nic_config;
  nic_config.num_queues = 4;
  SimNic nic(&sim, &net->host(0), nic_config);

  // All packets of one flow land on one queue; both directions match.
  auto pkt = DataPacket(100, net->host(0).ip);
  const int entry = nic.RedirectionEntryFor(*pkt);
  const int queue = nic.RedirectionEntryQueue(entry);
  for (int i = 0; i < 10; ++i) {
    net->host(1).end.Send(DataPacket(100, net->host(0).ip));
  }
  sim.Run();
  EXPECT_EQ(nic.RxQueueLen(queue), 10u);
  for (int q = 0; q < 4; ++q) {
    if (q != queue) {
      EXPECT_EQ(nic.RxQueueLen(q), 0u);
    }
  }
}

TEST(NicTest, ManyFlowsSpreadOverQueues) {
  Simulator sim;
  LinkConfig link_config;
  auto net = MakePointToPoint(&sim, link_config);
  NicConfig nic_config;
  nic_config.num_queues = 4;
  SimNic nic(&sim, &net->host(0), nic_config);
  for (uint16_t port = 1000; port < 1256; ++port) {
    auto pkt = MakeTcpPacket(net->host(1).ip, port, net->host(0).ip, 80, 0, 0,
                             TcpFlags::kAck, std::vector<uint8_t>(10));
    net->host(1).end.Send(std::move(pkt));
  }
  sim.Run();
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(nic.RxQueueLen(q), 20u);  // ~64 expected per queue.
  }
}

TEST(NicTest, SetActiveQueuesRestrictsSteering) {
  Simulator sim;
  LinkConfig link_config;
  auto net = MakePointToPoint(&sim, link_config);
  NicConfig nic_config;
  nic_config.num_queues = 4;
  SimNic nic(&sim, &net->host(0), nic_config);
  nic.SetActiveQueues(1);
  for (uint16_t port = 1000; port < 1100; ++port) {
    auto pkt = MakeTcpPacket(net->host(1).ip, port, net->host(0).ip, 80, 0, 0,
                             TcpFlags::kAck, std::vector<uint8_t>(10));
    net->host(1).end.Send(std::move(pkt));
  }
  sim.Run();
  EXPECT_EQ(nic.RxQueueLen(0), 100u);
  EXPECT_EQ(nic.RxQueueLen(1), 0u);
}

TEST(NicTest, RingOverflowDrops) {
  Simulator sim;
  LinkConfig link_config;
  link_config.gbps = 100.0;
  auto net = MakePointToPoint(&sim, link_config);
  NicConfig nic_config;
  nic_config.num_queues = 1;
  nic_config.ring_entries = 8;
  SimNic nic(&sim, &net->host(0), nic_config);
  for (int i = 0; i < 20; ++i) {
    net->host(1).end.Send(DataPacket(100, net->host(0).ip));
  }
  sim.Run();
  EXPECT_EQ(nic.RxQueueLen(0), 8u);
  EXPECT_EQ(nic.rx_drops(), 12u);
}

TEST(NicTest, NotifyFiresOnEmptyToNonEmpty) {
  Simulator sim;
  LinkConfig link_config;
  auto net = MakePointToPoint(&sim, link_config);
  NicConfig nic_config;
  nic_config.num_queues = 1;
  SimNic nic(&sim, &net->host(0), nic_config);
  int notifications = 0;
  nic.SetRxNotify(0, [&] { ++notifications; });
  for (int i = 0; i < 5; ++i) {
    net->host(1).end.Send(DataPacket(100, net->host(0).ip));
  }
  sim.Run();
  EXPECT_EQ(notifications, 1);  // Only the empty->non-empty transition.
  while (nic.PopRx(0)) {
  }
  net->host(1).end.Send(DataPacket(100, net->host(0).ip));
  sim.Run();
  EXPECT_EQ(notifications, 2);
}

}  // namespace
}  // namespace tas
