// Unit and component tests for TAS internals: per-flow state and buffers,
// the service's flow table and port allocator, context queues, the core
// scaler, and rate enforcement.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/app/bulk.h"
#include "src/app/rpc_echo.h"
#include "src/harness/experiment.h"
#include "src/shm/context_queue.h"
#include "src/tas/slow_path.h"

namespace tas {
namespace {

TEST(FlowBufferTest, AppWriteReadRoundTrip) {
  Flow flow;
  flow.cold().rx_mem.resize(1024);
  flow.cold().tx_mem.resize(1024);
  flow.fs.rx_base = flow.cold().rx_mem.data();
  flow.fs.tx_base = flow.cold().tx_mem.data();
  flow.fs.rx_size = 1024;
  flow.fs.tx_size = 1024;

  uint8_t data[300];
  for (size_t i = 0; i < sizeof(data); ++i) {
    data[i] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(flow.AppWriteTx(data, 300), 300u);
  EXPECT_EQ(flow.TxQueued(), 300u);
  EXPECT_EQ(flow.TxAvailable(), 300u);

  uint8_t out[300];
  flow.CopyFromTx(flow.fs.tx_tail, out, 300);
  EXPECT_EQ(std::memcmp(data, out, 300), 0);
}

TEST(FlowBufferTest, WirePositionWrapAround) {
  // Positions are free-running wire sequences: verify modular indexing.
  Flow flow;
  flow.cold().rx_mem.resize(256);
  flow.fs.rx_base = flow.cold().rx_mem.data();
  flow.fs.rx_size = 256;
  const uint32_t base = 0xFFFFFF80u;  // Near the 32-bit wrap.
  flow.fs.rx_head = base;
  flow.fs.rx_tail = base;
  uint8_t data[200];
  for (size_t i = 0; i < sizeof(data); ++i) {
    data[i] = static_cast<uint8_t>(i * 3);
  }
  flow.CopyIntoRx(base, data, 200);  // Crosses the wrap.
  flow.fs.rx_head += 200;
  uint8_t out[200];
  EXPECT_EQ(flow.AppReadRx(out, 200), 200u);
  EXPECT_EQ(std::memcmp(data, out, 200), 0);
  EXPECT_EQ(flow.fs.rx_tail, base + 200);  // Wrapped past zero.
}

TEST(FlowBufferTest, TxWriteRespectsCapacity) {
  Flow flow;
  flow.cold().tx_mem.resize(128);
  flow.fs.tx_base = flow.cold().tx_mem.data();
  flow.fs.tx_size = 128;
  uint8_t data[200] = {};
  EXPECT_EQ(flow.AppWriteTx(data, 200), 128u);
  EXPECT_EQ(flow.AppWriteTx(data, 10), 0u);  // Full.
}

TEST(FlowBufferTest, TokenBucketRefills) {
  Flow flow;
  flow.rate_bps = 8e9;  // 1 byte per ns.
  flow.tx_tokens = 0;
  flow.tokens_updated = 0;
  EXPECT_NEAR(flow.RefillTokens(1000, 1e9), 1000.0, 1.0);
  flow.tx_tokens = 0;
  // Burst cap limits accumulation over long idle.
  EXPECT_NEAR(flow.RefillTokens(1000000, 2896), 2896.0, 1.0);
}

TEST(ContextQueueTest, NotifyOnlyOnEmptyToNonEmpty) {
  AppContext ctx(16);
  int notifications = 0;
  ctx.set_app_notify([&] { ++notifications; });
  ctx.PushEvent(AppEvent{AppEventType::kRxData, 1, 10});
  ctx.PushEvent(AppEvent{AppEventType::kRxData, 1, 10});
  EXPECT_EQ(notifications, 1);
  ctx.rx().Pop();
  ctx.rx().Pop();
  ctx.PushEvent(AppEvent{AppEventType::kRxData, 1, 10});
  EXPECT_EQ(notifications, 2);
}

TEST(ContextQueueTest, FullQueueCountsDrops) {
  AppContext ctx(2);
  size_t accepted = 0;
  while (ctx.PushEvent(AppEvent{})) {
    ++accepted;
    if (accepted > 100) {
      FAIL() << "queue never filled";
    }
  }
  EXPECT_GT(ctx.dropped_events(), 0u);
}

TEST(ContextQueueTest, CommandNotifyFiresFastpathHook) {
  AppContext ctx(16);
  int kicks = 0;
  ctx.set_fastpath_notify([&] { ++kicks; });
  ctx.PushCommand(TxCommand{TxCommandType::kSend, 1, 100});
  ctx.PushCommand(TxCommand{TxCommandType::kSend, 1, 100});
  EXPECT_EQ(kicks, 1);  // Second push: queue already non-empty.
}

class TasServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    HostSpec spec;
    spec.stack = StackKind::kTas;
    spec.stack_cores = 4;
    LinkConfig link;
    exp_ = Experiment::PointToPoint(spec, spec, link);
    service_ = exp_->host(0).tas();
  }
  std::unique_ptr<Experiment> exp_;
  TasService* service_ = nullptr;
};

TEST_F(TasServiceFixture, FlowAllocationAndLookup) {
  const FlowKey key{80, MakeIp(10, 0, 0, 2), 5555};
  const FlowId id = service_->AllocateFlow(key);
  EXPECT_NE(id, kInvalidFlow);
  EXPECT_EQ(service_->LookupFlowId(key), id);
  EXPECT_EQ(service_->num_flows(), 1u);

  Flow* flow = service_->flow_by_id(id);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->fs.rx_size, service_->config().rx_buffer_bytes);
  // Transmit positions anchored at iss+1 with nothing outstanding.
  EXPECT_EQ(flow->fs.seq, flow->fs.tx_tail);
  EXPECT_EQ(flow->fs.tx_sent, 0u);

  service_->FreeFlow(id);
  EXPECT_EQ(service_->LookupFlowId(key), kInvalidFlow);
  EXPECT_EQ(service_->num_flows(), 0u);
  EXPECT_EQ(service_->flow_by_id(id), nullptr);
}

TEST_F(TasServiceFixture, EphemeralPortsUniqueWhileInUse) {
  std::set<uint16_t> ports;
  for (int i = 0; i < 100; ++i) {
    const uint16_t port = service_->AllocateEphemeralPort();
    EXPECT_TRUE(ports.insert(port).second) << "port reused while free";
    service_->AllocateFlow(FlowKey{port, MakeIp(10, 0, 0, 2), 1000});
  }
}

TEST_F(TasServiceFixture, CoreForFlowStableAndInActiveRange) {
  for (int i = 0; i < 64; ++i) {
    const FlowKey key{static_cast<uint16_t>(2000 + i), MakeIp(10, 0, 0, 2),
                      static_cast<uint16_t>(3000 + i)};
    const FlowId id = service_->AllocateFlow(key);
    Flow* flow = service_->flow_by_id(id);
    flow->fs.local_port = key.local_port;
    flow->fs.peer_ip = key.peer_ip;
    flow->fs.peer_port = key.peer_port;
    const int core = service_->CoreForFlow(*flow);
    EXPECT_GE(core, 0);
    EXPECT_LT(core, service_->active_cores());
    EXPECT_EQ(core, service_->CoreForFlow(*flow));  // Deterministic.
  }
}

TEST_F(TasServiceFixture, SetActiveCoresRestersAndRecordsTrace) {
  service_->SetActiveCores(2);
  EXPECT_EQ(service_->active_cores(), 2);
  service_->SetActiveCores(4);
  service_->SetActiveCores(1);
  const auto& points = service_->core_trace().points();
  ASSERT_GE(points.size(), 4u);
  EXPECT_EQ(points.back().second, 1.0);
  // All RSS entries now point at queue 0.
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(service_->nic()->RedirectionEntryQueue(i), 0);
  }
}

TEST(TasScalerTest, CoresGrowUnderLoadAndShrinkWhenIdle) {
  HostSpec server_spec;
  server_spec.stack = StackKind::kTas;
  server_spec.app_cores = 4;
  server_spec.tas_overridden = true;
  server_spec.tas.max_fastpath_cores = 4;
  server_spec.tas.dynamic_cores = true;
  server_spec.tas.monitor_interval = Ms(1);
  HostSpec client_spec;
  client_spec.stack = StackKind::kIx;
  client_spec.app_cores = 4;
  client_spec.engine_overridden = true;
  client_spec.engine = IxStackConfig();
  client_spec.engine.costs = &MinimalCostModel();
  LinkConfig link;
  link.gbps = 40.0;
  auto exp = Experiment::PointToPoint(server_spec, client_spec, link);

  EchoServerConfig sc;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  EchoClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 128;
  cc.pipeline_depth = 8;
  EchoClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();

  EXPECT_EQ(exp->host(0).tas()->active_cores(), 1);  // Dynamic start: 1 core.
  exp->sim().RunUntil(Ms(100));
  const int under_load = exp->host(0).tas()->active_cores();
  EXPECT_GT(under_load, 1) << "scaler never added cores under load";

  // Stop the load; cores must be released.
  exp->host(1).stack()->SetHandler(nullptr);
  exp->sim().RunUntil(Ms(400));
  EXPECT_EQ(exp->host(0).tas()->active_cores(), 1)
      << "scaler failed to release idle cores";
}

TEST(TasRateTest, FastPathEnforcesSlowPathRate) {
  // Cap one flow's rate via the CC floor and verify goodput obeys it.
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.tas_overridden = true;
  spec.tas.max_fastpath_cores = 2;
  spec.tas.dctcp.max_bps = 50e6;  // Hard policy cap: 50 Mbps.
  spec.tas.dctcp.initial_bps = 50e6;
  auto exp = Experiment::PointToPoint(spec, spec, LinkConfig{});

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 1;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();
  exp->sim().RunUntil(Ms(20));
  rx.BeginMeasurement();
  exp->sim().RunUntil(Ms(120));
  // Policy enforced on the fast path: goodput stays near the 50 Mbps cap
  // even though the link is 10G.
  EXPECT_LT(rx.ThroughputBps(), 80e6);
  EXPECT_GT(rx.ThroughputBps(), 20e6);
}

TEST(TasStateTest, BucketHelpersRoundTrip) {
  FlowState fs;
  SetBucket(fs, 0x123456);
  EXPECT_EQ(BucketOf(fs), 0x123456u);
  SetPeerWindowBytes(fs, 65536);
  EXPECT_EQ(PeerWindowBytes(fs), 65536u);
  // Saturation at the 16-bit granule limit.
  SetPeerWindowBytes(fs, 1ull << 40);
  EXPECT_EQ(fs.window, 0xFFFF);
}

}  // namespace
}  // namespace tas
