// Chaos suite: TAS invariants under every fault class the src/fault subsystem
// injects — link flaps during handshakes, total-loss windows, burst loss,
// corruption (caught by the checksum path), reordering, duplication, and
// NIC-level faults. The invariants: retransmission machinery fires (handshake
// retries, timeout/fast retransmits), flows complete or close cleanly, no
// flow is left stuck, stats stay consistent, and the whole circus is
// deterministic under a fixed seed + schedule.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "src/fault/injector.h"
#include "src/harness/experiment.h"
#include "src/net/pcap.h"
#include "src/tas/slow_path.h"

namespace tas {
namespace {

LinkConfig ChaosLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  return link;
}

HostSpec TasSpec() {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  return spec;
}

// Minimal app pair (mirrors tas_test.cc): server records the byte stream,
// client streams a deterministic pattern over one or more connections and
// closes when fully acked.
class RecordingServer : public AppHandler {
 public:
  RecordingServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }
  void OnAccepted(ConnId conn, uint16_t) override { accepted_.push_back(conn); }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    const size_t n = stack_->Recv(conn, buf.data(), bytes);
    per_conn_[conn].insert(per_conn_[conn].end(), buf.begin(),
                           buf.begin() + static_cast<long>(n));
    received_ += n;
  }
  void OnRemoteClosed(ConnId conn) override {
    remote_closed_++;
    stack_->Close(conn);
  }
  void OnClosed(ConnId) override { fully_closed_++; }

  Stack* stack_;
  uint16_t port_;
  std::vector<ConnId> accepted_;
  std::map<ConnId, std::vector<uint8_t>> per_conn_;
  size_t received_ = 0;
  int remote_closed_ = 0;
  int fully_closed_ = 0;
};

class PatternClient : public AppHandler {
 public:
  PatternClient(Stack* stack, IpAddr server, uint16_t port, size_t total,
                size_t num_conns = 1)
      : stack_(stack), server_(server), port_(port), total_(total), num_conns_(num_conns) {}
  void Start() {
    stack_->SetHandler(this);
    for (size_t i = 0; i < num_conns_; ++i) {
      ConnId id = stack_->Connect(server_, port_);
      progress_[id] = Progress{};
    }
  }
  void OnConnected(ConnId conn, bool success) override {
    if (!success) {
      ++failures_;
      return;
    }
    ++connected_;
    Pump(conn);
  }
  void OnSendSpace(ConnId conn, size_t bytes) override {
    auto it = progress_.find(conn);
    if (it == progress_.end()) {
      return;
    }
    it->second.acked += bytes;
    Pump(conn);
    if (it->second.sent >= total_ && it->second.acked >= total_ && !it->second.closed) {
      it->second.closed = true;
      stack_->Close(conn);
    }
  }
  void OnClosed(ConnId) override { ++fully_closed_; }

  void Pump(ConnId conn) {
    Progress& p = progress_[conn];
    while (p.sent < total_) {
      uint8_t chunk[997];
      const size_t want = std::min(sizeof(chunk), total_ - p.sent);
      for (size_t i = 0; i < want; ++i) {
        chunk[i] = static_cast<uint8_t>((p.sent + i) % 251);
      }
      const size_t n = stack_->Send(conn, chunk, want);
      p.sent += n;
      if (n < want) {
        break;
      }
    }
  }

  struct Progress {
    size_t sent = 0;
    size_t acked = 0;
    bool closed = false;
  };
  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  size_t total_;
  size_t num_conns_;
  std::map<ConnId, Progress> progress_;
  int connected_ = 0;
  int failures_ = 0;
  int fully_closed_ = 0;
};

void ExpectPattern(const std::vector<uint8_t>& data, size_t total) {
  ASSERT_EQ(data.size(), total);
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(data[i], static_cast<uint8_t>(i % 251)) << "at offset " << i;
  }
}

// --- Handshake under link flaps ---------------------------------------------

TEST(ChaosTest, LinkFlapDuringHandshakeRetriesAndRecovers) {
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), ChaosLink());
  // The link is dead for the SYN and its first retry (handshake RTO 20 ms);
  // the second retry at ~60 ms goes through.
  FaultSchedule chaos;
  chaos.LinkFlap(0, Ms(50), exp->host_link(1));
  exp->faults().Install(chaos);

  RecordingServer server(exp->host(0).stack(), 7000);
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 5000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(10));

  EXPECT_EQ(client.connected_, 1);
  EXPECT_EQ(client.failures_, 0);
  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, 5000);
  // The slow path really did retry the SYN while the link was down.
  EXPECT_GE(exp->host(1).tas()->stats().handshake_retransmits, 1u);
  EXPECT_GT(exp->host_link(1)->stats(1).drops_down, 0u);
  // Both fault events applied and were logged in order.
  ASSERT_EQ(exp->faults().log().size(), 2u);
  EXPECT_EQ(exp->faults().log()[0].description, "link down");
  EXPECT_EQ(exp->faults().log()[1].description, "link up");
  EXPECT_EQ(exp->faults().pending(), 0u);
}

TEST(ChaosTest, LongFlapExhaustsHandshakeRetriesCleanly) {
  HostSpec spec = TasSpec();
  spec.tas_overridden = true;
  spec.tas.handshake_rto = Ms(5);
  spec.tas.max_handshake_retries = 3;
  auto exp = Experiment::PointToPoint(spec, spec, ChaosLink());
  // Down for the whole retry budget (5+10+20+40 ms of backoff).
  FaultSchedule chaos;
  chaos.LinkDownAt(0, exp->host_link(1));
  exp->faults().Install(chaos);

  RecordingServer server(exp->host(0).stack(), 7000);
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 1000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(10));

  EXPECT_EQ(client.connected_, 0);
  EXPECT_EQ(client.failures_, 1);
  EXPECT_GE(exp->host(1).tas()->stats().handshake_retransmits, 3u);
  // The half-open flow was reclaimed, not leaked.
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->host(0).tas()->num_flows(), 0u);
}

// --- Total-loss window -------------------------------------------------------

TEST(ChaosTest, TotalLossWindowTriggersTimeoutRetransmitsThenRecovers) {
  // Slow link (100 Mbit/s) so the 120 KB transfer spans tens of ms and is
  // mid-flight when the window opens.
  LinkConfig slow = ChaosLink();
  slow.gbps = 0.1;
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), slow);
  Link* link = exp->host_link(0);
  // Handshake completes in the clear; then the wire goes black for 10 ms in
  // both directions mid-transfer, long enough that only the slow-path RTO
  // (not dupacks, which need deliveries) can restart the flow.
  FaultSchedule chaos;
  chaos.ImpairmentWindowBoth(Ms(2), Ms(12), link, BernoulliLoss(1.0));
  exp->faults().Install(chaos);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 120000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  EXPECT_GT(exp->host(1).tas()->stats().timeout_retransmits, 0u);
  EXPECT_GT(link->stats(0).drops_induced + link->stats(1).drops_induced, 0u);
  // Flows drained on both ends after the close handshake.
  EXPECT_EQ(exp->host(0).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->faults().pending(), 0u);
}

// --- Corruption vs the checksum path ----------------------------------------

TEST(ChaosTest, CorruptionRejectedByWireChecksumWhenValidating) {
  LinkConfig link = ChaosLink();
  link.validate_wire_format = true;  // Real bytes, real checksums.
  link.faults.Add(Corruption(0.05, 3));
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), link);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 60000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  // The stream survives because every damaged frame was caught and dropped at
  // the serialization boundary, then retransmitted.
  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  const LinkStats& c2s = exp->host_link(1)->stats(1);
  const LinkStats& s2c = exp->host_link(1)->stats(0);
  EXPECT_GT(c2s.drops_corrupt + s2c.drops_corrupt, 0u);
  EXPECT_GE(c2s.corrupt_marked + s2c.corrupt_marked,
            c2s.drops_corrupt + s2c.drops_corrupt);
}

TEST(ChaosTest, CorruptionDroppedByNicChecksumWithoutByteValidation) {
  LinkConfig link = ChaosLink();
  link.faults.Add(Corruption(0.05));
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), link);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 60000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  // The modeled NIC checksum offload discarded the marked frames.
  EXPECT_GT(exp->host(0).tas()->nic()->rx_checksum_drops() +
                exp->host(1).tas()->nic()->rx_checksum_drops(),
            0u);
}

// --- Burst loss, reordering, duplication -------------------------------------

TEST(ChaosTest, GilbertElliottBurstLossRecovers) {
  LinkConfig link = ChaosLink();
  // Mean burst: 4 packets at 90% loss; bursts start on ~2% of packets. The
  // transfer is long enough that the data direction's own burst process (each
  // direction draws from its own rng stream) reliably clips data packets.
  link.faults.Add(GilbertElliottLoss(0.02, 0.25, 0.9));
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), link);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 300000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  const TasStats& tx_stats = exp->host(1).tas()->stats();
  EXPECT_GT(exp->host_link(0)->stats(0).drops_induced +
                exp->host_link(0)->stats(1).drops_induced,
            0u);
  // Burst loss must exercise recovery, via dupacks or the slow-path RTO.
  EXPECT_GT(tx_stats.fast_retransmits + tx_stats.timeout_retransmits, 0u);
  EXPECT_EQ(exp->host(0).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);
}

TEST(ChaosTest, ReorderingAcceptedByOooTracking) {
  LinkConfig link = ChaosLink();
  link.faults.Add(Reordering(0.10, Us(20), Us(80)));
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), link);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 100000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  EXPECT_GT(exp->host_link(0)->stats(1).reordered, 0u);
  // The single out-of-order interval absorbed at least some of the shuffles.
  EXPECT_GT(exp->host(0).tas()->stats().ooo_accepted, 0u);
}

TEST(ChaosTest, DuplicationDoesNotCorruptTheStream) {
  LinkConfig link = ChaosLink();
  link.faults.Add(Duplication(0.2));
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), link);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 80000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  // Exactly the pattern, no doubled bytes.
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  EXPECT_EQ(server.received_, kTotal);
  EXPECT_GT(exp->host_link(0)->stats(0).duplicated +
                exp->host_link(0)->stats(1).duplicated,
            0u);
}

TEST(ChaosTest, SwitchUplinkLossWindowHitsCrossSwitchTraffic) {
  // Dumbbell: the impairment targets the switch-to-switch bottleneck, found
  // via the topology's fault-targeting accessor rather than an access link.
  LinkConfig host_link = ChaosLink();
  LinkConfig bottleneck = ChaosLink();
  auto exp = Experiment::Custom(
      [&](Simulator* sim, SimPartition* partition) {
        return MakeDumbbell(sim, 1, 1, host_link, bottleneck, partition);
      },
      {TasSpec()});
  Link* uplink = exp->net()->SwitchLink(exp->net()->switch_at(0), exp->net()->switch_at(1));
  ASSERT_NE(uplink, nullptr);
  // Not adjacent to itself.
  EXPECT_EQ(exp->net()->SwitchLink(exp->net()->switch_at(0), exp->net()->switch_at(0)),
            nullptr);

  FaultSchedule chaos;
  chaos.ImpairmentWindowBoth(0, Sec(10), uplink, BernoulliLoss(0.05));
  exp->faults().Install(chaos);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 60000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  // Loss landed on the uplink, not the access links.
  EXPECT_GT(uplink->stats(0).drops_induced + uplink->stats(1).drops_induced, 0u);
  EXPECT_EQ(exp->host_link(0)->stats(0).drops_induced +
                exp->host_link(0)->stats(1).drops_induced,
            0u);
}

// --- NIC-level faults --------------------------------------------------------

TEST(ChaosTest, NicRxFaultPipelineDropsAndStackRecovers) {
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), ChaosLink());
  SimNic* server_nic = exp->host(0).tas()->nic();
  server_nic->AddRxImpairment(BernoulliLoss(0.10));

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 80000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  EXPECT_GT(server_nic->rx_fault_drops(), 0u);
  // Conservation: every frame the NIC saw was ringed, fault-dropped, or
  // overflow-dropped.
  EXPECT_EQ(exp->host(0).tas()->stats().fastpath_rx_packets +
                exp->host(0).tas()->stats().slowpath_packets +
                server_nic->rx_fault_drops() + server_nic->rx_drops(),
            server_nic->rx_packets());
}

// --- The full storm ----------------------------------------------------------

TEST(ChaosTest, ChaosStormLeavesNoFlowStuck) {
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), ChaosLink());
  Link* link = exp->host_link(0);
  FaultSchedule chaos;
  chaos.LinkFlap(Ms(10), Ms(5), link)
      .ImpairmentWindowBoth(Ms(20), Ms(40), link, GilbertElliottLoss(0.02, 0.3, 0.9))
      .ImpairmentWindowBoth(Ms(45), Ms(60), link, Corruption(0.03))
      .ImpairmentWindowBoth(Ms(60), Ms(80), link, Reordering(0.05, Us(20), Us(100)))
      .LinkFlap(Ms(90), Ms(10), link);
  exp->faults().Install(chaos);

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kPerConn = 30000;
  constexpr size_t kConns = 8;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kPerConn, kConns);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(60));

  // Every connection either completed or failed cleanly — and with handshake
  // retries riding out the flaps, they all complete here.
  EXPECT_EQ(client.connected_, static_cast<int>(kConns));
  EXPECT_EQ(client.failures_, 0);
  ASSERT_EQ(server.per_conn_.size(), kConns);
  for (const auto& [conn, data] : server.per_conn_) {
    ExpectPattern(data, kPerConn);
  }
  // No flow left stuck anywhere, and the schedule fully applied.
  EXPECT_EQ(exp->host(0).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->faults().pending(), 0u);
  // 2 flaps x 2 events + 3 windows x 4 events (install/remove per direction).
  ASSERT_EQ(exp->faults().log().size(), 16u);
  for (size_t i = 1; i < exp->faults().log().size(); ++i) {
    EXPECT_GE(exp->faults().log()[i].at, exp->faults().log()[i - 1].at);
  }
}

// --- Determinism -------------------------------------------------------------

struct ReplayResult {
  size_t received = 0;
  std::string stats_fingerprint;
  std::string pcap_bytes;
};

std::string FingerprintLink(const Link& link) {
  std::ostringstream out;
  for (int side = 0; side < 2; ++side) {
    const LinkStats& s = link.stats(side);
    out << s.tx_packets << ':' << s.tx_bytes << ':' << s.drops_overflow << ':'
        << s.drops_induced << ':' << s.drops_down << ':' << s.drops_corrupt << ':'
        << s.corrupt_marked << ':' << s.duplicated << ':' << s.reordered << ':'
        << s.ecn_marks << ':' << s.queue_pkts.count() << ':' << s.queue_pkts.sum()
        << '/';
  }
  return out.str();
}

ReplayResult RunSeededChaosScenario(const std::string& pcap_path) {
  LinkConfig link = ChaosLink();
  link.rng_seed = 42;  // Fixed: byte-identical across separate constructions.
  link.faults.Add(GilbertElliottLoss(0.01, 0.3, 0.85));
  link.faults.Add(Duplication(0.02));
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), link);

  PcapWriter pcap(pcap_path);
  exp->host_link(0)->AttachPcap(1, &pcap);

  FaultSchedule chaos;
  chaos.LinkFlap(Ms(8), Ms(4), exp->host_link(0))
      .ImpairmentWindowBoth(Ms(15), Ms(25), exp->host_link(0),
                            Reordering(0.05, Us(20), Us(60)));
  exp->faults().Install(chaos);

  RecordingServer server(exp->host(0).stack(), 7000);
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 60000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(20));

  ReplayResult result;
  result.received = server.received_;
  result.stats_fingerprint = FingerprintLink(*exp->host_link(0));
  std::ifstream in(pcap_path, std::ios::binary);
  result.pcap_bytes.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
  return result;
}

TEST(ChaosTest, SeededChaosScenarioIsByteIdenticalAcrossRuns) {
  const ReplayResult a = RunSeededChaosScenario("/tmp/tas_chaos_replay_a.pcap");
  const ReplayResult b = RunSeededChaosScenario("/tmp/tas_chaos_replay_b.pcap");
  EXPECT_EQ(a.received, 60000u);
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.stats_fingerprint, b.stats_fingerprint);
  ASSERT_FALSE(a.pcap_bytes.empty());
  EXPECT_EQ(a.pcap_bytes, b.pcap_bytes);
  std::remove("/tmp/tas_chaos_replay_a.pcap");
  std::remove("/tmp/tas_chaos_replay_b.pcap");
}

// --- Injector mechanics ------------------------------------------------------

TEST(ChaosTest, ScheduleEventsApplyInOrderWithPastTimesClamped) {
  Simulator sim;
  FaultInjector injector(&sim);
  std::vector<int> order;
  FaultSchedule first;
  first.At(Ms(5), "later", [&order] { order.push_back(2); });
  first.At(Ms(1), "sooner", [&order] { order.push_back(1); });
  injector.Install(first);
  sim.RunUntil(Ms(2));
  ASSERT_EQ(order.size(), 1u);

  // Mid-run install with an already-passed timestamp: applies now, not never.
  FaultSchedule second;
  second.At(Ms(1), "stale", [&order] { order.push_back(3); });
  injector.Install(second);
  sim.RunUntil(Ms(10));

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);  // Clamped to install time (2 ms) — before the 5 ms event.
  EXPECT_EQ(order[2], 2);
  ASSERT_EQ(injector.log().size(), 3u);
  EXPECT_EQ(injector.log()[1].description, "stale");
  EXPECT_EQ(injector.log()[1].at, Ms(2));
  EXPECT_EQ(injector.pending(), 0u);
}

TEST(ChaosTest, LinkDownGateAttributesDropsAndReopens) {
  Simulator sim;
  LinkConfig config;
  Link link(&sim, config);
  struct Collector : NetDevice {
    void Receive(PacketPtr pkt) override { pkts.push_back(std::move(pkt)); }
    std::vector<PacketPtr> pkts;
  } dev;
  link.Attach(1, &dev);

  link.SetDown(true);
  EXPECT_TRUE(link.down());
  for (int i = 0; i < 5; ++i) {
    link.Send(0, MakeTcpPacket(MakeIp(10, 0, 0, 1), 1, MakeIp(10, 0, 0, 2), 2, 0, 0,
                               TcpFlags::kAck));
  }
  sim.Run();
  EXPECT_TRUE(dev.pkts.empty());
  EXPECT_EQ(link.stats(0).drops_down, 5u);
  EXPECT_EQ(link.stats(0).drops_induced, 0u);

  link.SetDown(false);
  EXPECT_FALSE(link.down());
  link.Send(0, MakeTcpPacket(MakeIp(10, 0, 0, 1), 1, MakeIp(10, 0, 0, 2), 2, 0, 0,
                             TcpFlags::kAck));
  sim.Run();
  EXPECT_EQ(dev.pkts.size(), 1u);
}

}  // namespace
}  // namespace tas
