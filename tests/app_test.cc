// Application-level integration tests: the RPC echo pair, the key-value
// store (correctness, mix, contention), bulk transfer, and the FlexStorm
// pipeline, each across the relevant stacks.
#include <gtest/gtest.h>

#include "src/app/bulk.h"
#include "src/app/flexstorm.h"
#include "src/app/kv_store.h"
#include "src/app/rpc_echo.h"
#include "src/harness/experiment.h"

namespace tas {
namespace {

LinkConfig FastLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  return link;
}

class EchoOnStackTest : public ::testing::TestWithParam<StackKind> {};

TEST_P(EchoOnStackTest, ClosedLoopEchoCompletes) {
  HostSpec server_spec;
  server_spec.stack = GetParam();
  server_spec.app_cores = 2;
  HostSpec client_spec;
  client_spec.stack = GetParam();
  client_spec.app_cores = 2;
  auto exp = Experiment::PointToPoint(server_spec, client_spec, FastLink());

  EchoServerConfig sc;
  sc.request_bytes = 64;
  sc.response_bytes = 64;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();

  EchoClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 8;
  EchoClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();

  exp->sim().RunUntil(Ms(50));
  client.BeginMeasurement();
  exp->sim().RunUntil(Ms(100));
  EXPECT_GT(client.Throughput(), 1000.0) << "echo loop stalled";
  EXPECT_EQ(server.requests_served(), server.requests_served());
  EXPECT_GT(client.latency().Median(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllStacks, EchoOnStackTest,
                         ::testing::Values(StackKind::kTas, StackKind::kTasLowLevel,
                                           StackKind::kLinux, StackKind::kIx,
                                           StackKind::kMtcp));

TEST(EchoTest, ShortLivedConnectionsReconnect) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, FastLink());
  EchoServerConfig sc;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  EchoClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 4;
  cc.messages_per_connection = 3;
  EchoClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();
  exp->sim().RunUntil(Ms(200));
  EXPECT_GT(client.reconnects(), 10u);
  EXPECT_GT(client.completed(), client.reconnects() * 3 - 4);
}

TEST(EchoTest, PipelinedDepthIncreasesThroughput) {
  auto run = [](size_t depth) {
    HostSpec spec;
    spec.stack = StackKind::kTas;
    auto exp = Experiment::PointToPoint(spec, spec, FastLink());
    EchoServerConfig sc;
    EchoServer server(exp->host_sim(0), exp->host(0).stack(), sc);
    server.Start();
    EchoClientConfig cc;
    cc.server_ip = exp->host(0).ip();
    cc.num_connections = 1;
    cc.pipeline_depth = depth;
    EchoClient client(exp->host_sim(1), exp->host(1).stack(), cc);
    client.Start();
    exp->sim().RunUntil(Ms(20));
    client.BeginMeasurement();
    exp->sim().RunUntil(Ms(60));
    return client.Throughput();
  };
  EXPECT_GT(run(16), run(1) * 2);
}

class KvOnStackTest : public ::testing::TestWithParam<StackKind> {};

TEST_P(KvOnStackTest, GetSetMixServed) {
  HostSpec spec;
  spec.stack = GetParam();
  spec.app_cores = 2;
  auto exp = Experiment::PointToPoint(spec, spec, FastLink());
  KvServerConfig sc;
  sc.num_keys = 1000;
  KvServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  KvClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 16;
  cc.num_keys = 1000;
  KvClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();
  exp->sim().RunUntil(Ms(100));
  EXPECT_GT(client.completed(), 500u);
  // 90/10 GET/SET mix within tolerance.
  const double get_fraction = static_cast<double>(server.gets()) /
                              static_cast<double>(server.gets() + server.sets());
  EXPECT_NEAR(get_fraction, 0.9, 0.05);
}

INSTANTIATE_TEST_SUITE_P(SomeStacks, KvOnStackTest,
                         ::testing::Values(StackKind::kTas, StackKind::kLinux));

TEST(KvTest, OpenLoopRateIsRespected) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, FastLink());
  KvServerConfig sc;
  KvServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  KvClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 32;
  cc.target_ops_per_sec = 50000;
  KvClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();
  exp->sim().RunUntil(Ms(50));
  client.BeginMeasurement();
  exp->sim().RunUntil(Ms(250));
  EXPECT_NEAR(client.Throughput(), 50000, 5000);
}

TEST(KvTest, ContendedModeSerializesOnLock) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.app_cores = 4;
  spec.stack_cores = 4;
  auto exp = Experiment::PointToPoint(spec, spec, FastLink());
  Core lock_core(exp->host_sim(0), 999, 2.1);
  KvServerConfig sc;
  sc.contended = true;
  sc.lock_core = &lock_core;
  sc.lock_hold_cycles = 2100;  // 1us per op -> 1 mOps hard cap.
  sc.app_cycles_per_op = 100;
  KvServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  KvClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 64;
  KvClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();
  exp->sim().RunUntil(Ms(30));
  client.BeginMeasurement();
  exp->sim().RunUntil(Ms(80));
  EXPECT_LT(client.Throughput(), 1.1e6);  // Lock-bound.
  EXPECT_GT(lock_core.total_cycles(), 0u);
}

TEST(BulkTest, TransfersAtNearLineRate) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.app_cores = 4;
  spec.stack_cores = 4;
  LinkConfig link = FastLink();
  link.ecn_threshold_pkts = 65;
  auto exp = Experiment::PointToPoint(spec, spec, link);
  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 16;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();
  // Rate-based DCTCP converges via +10 Mbps additive steps (paper default):
  // 16 flows x 10G need ~60ms to reach equilibrium.
  exp->sim().RunUntil(Ms(100));
  rx.BeginMeasurement();
  exp->sim().RunUntil(Ms(160));
  EXPECT_GT(rx.ThroughputBps(), 7e9);  // > 70% of the 10G link.
  EXPECT_EQ(tx.connected(), 16u);
}

TEST(BulkTest, WindowSamplingCollectsPerConnection) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, FastLink());
  BulkReceiverConfig rc;
  rc.sample_interval = Ms(10);
  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), rc);
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 4;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();
  exp->sim().RunUntil(Ms(20));
  rx.BeginMeasurement();
  exp->sim().RunUntil(Ms(80));
  // ~6 windows x 4 connections of samples.
  EXPECT_GE(rx.window_samples().size(), 16u);
}

TEST(FlexStormTest, TuplesFlowThreeHops) {
  std::vector<HostSpec> specs;
  std::vector<LinkConfig> links;
  for (int i = 0; i < 3; ++i) {
    HostSpec spec;
    spec.stack = StackKind::kTas;
    spec.app_cores = 4;
    specs.push_back(spec);
    links.push_back(FastLink());
  }
  auto exp = Experiment::Star(specs, links);
  FlexStormConfig config;
  config.spout_rate_tps = 50000;
  config.mux_batch_timeout = 0;
  std::vector<std::unique_ptr<FlexStormNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    config.rng_seed = 50 + i;
    nodes.push_back(std::make_unique<FlexStormNode>(
        exp->host_sim(i), exp->host(i).stack(), exp->host(i).AppCorePtrs(), config));
  }
  for (int i = 0; i < 3; ++i) {
    nodes[i]->Start(exp->host((i + 1) % 3).ip());
  }
  exp->sim().RunUntil(Ms(40));
  for (auto& node : nodes) {
    node->BeginMeasurement();
  }
  exp->sim().RunUntil(Ms(140));
  uint64_t total = 0;
  for (auto& node : nodes) {
    total += node->completed();
  }
  // 3 spouts at 50k for ~140ms; most tuples must complete all 3 hops.
  EXPECT_GT(total, 10000u);
  EXPECT_GT(nodes[0]->tuple_latency_us().count(), 1000u);
  EXPECT_GT(nodes[0]->processing_us().mean(), 0.1);
}

TEST(FlexStormTest, BatchingRaisesOutputWait) {
  auto run = [](TimeNs batch_timeout) {
    std::vector<HostSpec> specs;
    std::vector<LinkConfig> links;
    for (int i = 0; i < 3; ++i) {
      HostSpec spec;
      spec.stack = StackKind::kTas;
      spec.app_cores = 4;
      specs.push_back(spec);
      links.push_back(FastLink());
    }
    auto exp = Experiment::Star(specs, links);
    FlexStormConfig config;
    config.spout_rate_tps = 30000;
    config.mux_batch_timeout = batch_timeout;
    std::vector<std::unique_ptr<FlexStormNode>> nodes;
    for (int i = 0; i < 3; ++i) {
      config.rng_seed = 60 + i;
      nodes.push_back(std::make_unique<FlexStormNode>(
          exp->host_sim(i), exp->host(i).stack(), exp->host(i).AppCorePtrs(), config));
    }
    for (int i = 0; i < 3; ++i) {
      nodes[i]->Start(exp->host((i + 1) % 3).ip());
    }
    exp->sim().RunUntil(Ms(30));
    for (auto& node : nodes) {
      node->BeginMeasurement();
    }
    exp->sim().RunUntil(Ms(120));
    return nodes[0]->output_wait_us().mean();
  };
  const double batched = run(Ms(5));
  const double unbatched = run(0);
  EXPECT_GT(batched, unbatched * 10);  // Batching dominates output wait.
}

}  // namespace
}  // namespace tas
