// Reverse-proxy tier tests (DESIGN.md §11): hot-object cache semantics, wire
// framing, and end-to-end client -> proxy -> origin behavior on TAS —
// hit/store/splice response paths, pipelined origin connection pooling under
// a hard bound, idle reaping, and same-seed determinism.
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/experiment.h"
#include "src/proxy/object_cache.h"
#include "src/proxy/origin_server.h"
#include "src/proxy/proxy_client.h"
#include "src/proxy/proxy_server.h"
#include "src/proxy/proxy_wire.h"

namespace tas {
namespace {

TEST(HotObjectCacheTest, LruEvictsOldestWithinByteBudget) {
  HotObjectCache cache(1000);
  cache.Insert(1, 400);
  cache.Insert(2, 400);
  uint32_t len = 0;
  EXPECT_TRUE(cache.Lookup(1, &len));  // Refresh 1: now 2 is LRU.
  EXPECT_EQ(len, 400u);
  cache.Insert(3, 400);  // 400+400+400 > 1000 -> evict 2.
  EXPECT_TRUE(cache.Lookup(1, &len));
  EXPECT_FALSE(cache.Lookup(2, &len));
  EXPECT_TRUE(cache.Lookup(3, &len));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.bytes(), 800u);
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(HotObjectCacheTest, OversizeObjectIsRejected) {
  HotObjectCache cache(100);
  cache.Insert(7, 101);
  uint32_t len = 0;
  EXPECT_FALSE(cache.Lookup(7, &len));
  EXPECT_EQ(cache.stats().oversize_rejects, 1u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(HotObjectCacheTest, RefreshKeepsSingleEntry) {
  HotObjectCache cache(1000);
  cache.Insert(5, 100);
  cache.Insert(5, 100);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 100u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ProxyWireTest, RequestRoundTrip) {
  uint8_t buf[kProxyRequestBytes];
  EncodeProxyRequest(buf, ProxyRequest{0xDEADBEEFu, 42});
  const ProxyRequest req = DecodeProxyRequest(buf);
  EXPECT_EQ(req.object_id, 0xDEADBEEFu);
  EXPECT_EQ(req.request_id, 42u);
}

TEST(ProxyWireTest, ResponseHeaderRoundTrip) {
  uint8_t buf[kProxyResponseHeader];
  EncodeProxyResponseHeader(buf, ProxyResponseHeader{kProxyStatusOk, 7, 123456});
  const ProxyResponseHeader hdr = DecodeProxyResponseHeader(buf);
  EXPECT_EQ(hdr.status, kProxyStatusOk);
  EXPECT_EQ(hdr.request_id, 7u);
  EXPECT_EQ(hdr.body_len, 123456u);
}

TEST(ProxyWireTest, ObjectBytesDeterministicAndBounded) {
  for (uint32_t id = 0; id < 1000; ++id) {
    const uint32_t a = ProxyObjectBytes(id, 64, 4096);
    EXPECT_EQ(a, ProxyObjectBytes(id, 64, 4096));
    EXPECT_GE(a, 64u);
    EXPECT_LT(a, 64u + 4096u);
  }
  EXPECT_EQ(ProxyObjectBytes(9, 128, 0), 128u);
}

// ---------------------------------------------------------------------------
// End-to-end fixtures: host 0 = proxy, host 1 = origin, host 2 = clients.

LinkConfig TestLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  link.rng_seed = 42;  // Fixed so same-seed runs are byte-identical.
  return link;
}

HostSpec TasSpec() {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  return spec;
}

struct ProxyRig {
  std::unique_ptr<Experiment> exp;
  std::unique_ptr<ProxyServer> proxy;
  std::unique_ptr<OriginServer> origin;
  std::unique_ptr<ProxyClientGen> clients;
};

ProxyRig MakeRig(ProxyServerConfig proxy_cfg, OriginServerConfig origin_cfg,
                 ProxyClientConfig client_cfg) {
  ProxyRig rig;
  rig.exp = Experiment::Star({TasSpec(), TasSpec(), TasSpec()}, {TestLink()});
  proxy_cfg.pool.origin_ip = rig.exp->host(1).ip();
  proxy_cfg.pool.origin_port = origin_cfg.port;
  client_cfg.proxy_ip = rig.exp->host(0).ip();
  client_cfg.proxy_port = proxy_cfg.listen_port;
  client_cfg.min_body_bytes = origin_cfg.min_body_bytes;
  client_cfg.body_spread = origin_cfg.body_spread;
  rig.proxy = std::make_unique<ProxyServer>(rig.exp->host_sim(0), rig.exp->host(0).stack(), proxy_cfg);
  rig.origin =
      std::make_unique<OriginServer>(rig.exp->host_sim(1), rig.exp->host(1).stack(), origin_cfg);
  rig.clients =
      std::make_unique<ProxyClientGen>(rig.exp->host_sim(2), rig.exp->host(2).stack(), client_cfg);
  rig.origin->Start();
  rig.proxy->Start();
  rig.clients->Start();
  return rig;
}

// Runs until the client generator completed `target` responses (or the
// deadline passes); returns whether the target was reached.
bool RunUntilCompleted(ProxyRig& rig, uint64_t target, TimeNs deadline) {
  while (rig.exp->sim().Now() < deadline && rig.clients->completed() < target) {
    rig.exp->sim().RunUntil(rig.exp->sim().Now() + Ms(10));
  }
  return rig.clients->completed() >= target;
}

TEST(ProxyE2eTest, MissesThenHitsServeFromCache) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 4 << 20;             // Everything fits.
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;     // Store path only.
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 200;
  origin_cfg.body_spread = 1000;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 4;
  client_cfg.total_connections = 0;  // Keep-alive, closed loop.
  client_cfg.num_objects = 20;       // Tiny universe -> guaranteed re-hits.
  client_cfg.zipf_skew = 0.9;
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  ASSERT_TRUE(RunUntilCompleted(rig, 400, Sec(10)));
  EXPECT_EQ(rig.clients->duplicates(), 0u);
  EXPECT_EQ(rig.clients->mismatches(), 0u);
  EXPECT_EQ(rig.clients->bad_bodies(), 0u);
  // At most one miss per object; everything else hit the cache.
  EXPECT_LE(rig.proxy->cache().stats().misses, 20u);
  EXPECT_GT(rig.proxy->cache().stats().hits, 300u);
  EXPECT_GE(rig.proxy->responses(), rig.clients->completed());
  // Origin only saw the cold fetches.
  EXPECT_LE(rig.origin->requests_served(), 20u);
}

TEST(ProxyE2eTest, LargeBodiesSpliceWithoutCaching) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 4 << 20;
  proxy_cfg.splice_min_body = 1;  // Everything splices.
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 8 * 1024;
  origin_cfg.body_spread = 8 * 1024;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 4;
  client_cfg.num_objects = 50;
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  ASSERT_TRUE(RunUntilCompleted(rig, 200, Sec(10)));
  EXPECT_EQ(rig.clients->bad_bodies(), 0u);
  EXPECT_EQ(rig.clients->duplicates(), 0u);
  EXPECT_GT(rig.proxy->spliced_bytes(), 200u * 8 * 1024);
  EXPECT_GT(rig.proxy->pool().stats().reused, 0u);
  // Spliced bodies bypass the cache entirely.
  EXPECT_EQ(rig.proxy->cache().stats().insertions, 0u);
  EXPECT_EQ(rig.proxy->cache().stats().hits, 0u);
}

TEST(ProxyE2eTest, OriginPoolHonorsBoundAndQueues) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 0;  // Never cache: every request goes to origin.
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;
  proxy_cfg.pool.max_conns = 2;
  proxy_cfg.pool.pipeline_depth = 2;
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 500;
  origin_cfg.body_spread = 500;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 16;  // 16 clients x 4 deep >> 2 conns x 2 deep.
  client_cfg.pipeline_depth = 4;
  client_cfg.num_objects = 5000;  // Make repeat draws rare.
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  ASSERT_TRUE(RunUntilCompleted(rig, 300, Sec(20)));
  EXPECT_LE(rig.proxy->pool().stats().conns_hw, 2u);
  EXPECT_GT(rig.proxy->pool().stats().queued_hw, 0u);
  EXPECT_GT(rig.proxy->pool().stats().reused, 0u);
  EXPECT_EQ(rig.clients->duplicates(), 0u);
  EXPECT_EQ(rig.clients->mismatches(), 0u);
  EXPECT_EQ(rig.clients->bad_bodies(), 0u);
}

TEST(ProxyE2eTest, IdleConnectionsAreReaped) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 0;
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;
  proxy_cfg.pool.idle_timeout = Ms(5);
  proxy_cfg.pool.reap_interval = Ms(1);
  OriginServerConfig origin_cfg;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 2;
  client_cfg.total_connections = 2;  // A short burst, then silence.
  client_cfg.requests_per_connection = 10;
  client_cfg.half_close = true;
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  ASSERT_TRUE(RunUntilCompleted(rig, 20, Sec(10)));
  rig.exp->sim().RunUntil(rig.exp->sim().Now() + Ms(200));
  EXPECT_GT(rig.proxy->pool().stats().reaped, 0u);
  EXPECT_EQ(rig.proxy->pool().live_conns(), 0u);
  // The half-closing clients were all answered in full.
  EXPECT_EQ(rig.clients->completed(), 20u);
  EXPECT_EQ(rig.clients->duplicates(), 0u);
}

TEST(ProxyE2eTest, ChurningClientsHalfCloseCleanly) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 1 << 20;
  proxy_cfg.splice_min_body = 2048;
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 256;
  origin_cfg.body_spread = 4096;  // Mix of store- and splice-class bodies.
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 8;
  client_cfg.total_connections = 100;
  client_cfg.requests_per_connection = 5;
  client_cfg.half_close = true;
  client_cfg.num_objects = 200;
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  ASSERT_TRUE(RunUntilCompleted(rig, 500, Sec(30)));
  EXPECT_EQ(rig.clients->issued(), 500u);
  EXPECT_EQ(rig.clients->completed(), 500u);
  EXPECT_EQ(rig.clients->duplicates(), 0u);
  EXPECT_EQ(rig.clients->mismatches(), 0u);
  EXPECT_EQ(rig.clients->bad_bodies(), 0u);
  EXPECT_EQ(rig.proxy->aborted_clients(), 0u);
  // Both response machineries were exercised.
  EXPECT_GT(rig.proxy->responses(), 0u);
  EXPECT_GT(rig.proxy->spliced_bytes(), 0u);
  // All client conns drained and closed; no leaks on the proxy.
  rig.exp->sim().RunUntil(rig.exp->sim().Now() + Ms(100));
  EXPECT_EQ(rig.proxy->live_clients(), 0u);
}

struct DeterminismSample {
  uint64_t completed = 0;
  uint64_t hits = 0;
  uint64_t spliced = 0;
  uint64_t opened = 0;
  TimeNs end_time = 0;
};

DeterminismSample RunDeterministic() {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 256 * 1024;
  proxy_cfg.splice_min_body = 2048;
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 256;
  origin_cfg.body_spread = 4096;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 6;
  client_cfg.total_connections = 60;
  client_cfg.requests_per_connection = 5;
  client_cfg.rng_seed = 12345;
  client_cfg.num_objects = 100;
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);
  RunUntilCompleted(rig, 300, Sec(30));
  DeterminismSample s;
  s.completed = rig.clients->completed();
  s.hits = rig.proxy->cache().stats().hits;
  s.spliced = rig.proxy->spliced_bytes();
  s.opened = rig.proxy->pool().stats().opened;
  s.end_time = rig.exp->sim().Now();
  return s;
}

TEST(ProxyE2eTest, SameSeedRunsAreIdentical) {
  const DeterminismSample a = RunDeterministic();
  const DeterminismSample b = RunDeterministic();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.spliced, b.spliced);
  EXPECT_EQ(a.opened, b.opened);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(ProxyE2eTest, MetricsRegisterAndCount) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 1 << 20;
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;
  OriginServerConfig origin_cfg;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 2;
  client_cfg.num_objects = 10;
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);
  MetricRegistry registry;
  rig.proxy->RegisterMetrics(registry);
  ASSERT_TRUE(registry.Has("proxy.requests"));
  ASSERT_TRUE(registry.Has("proxy.cache.hits"));
  ASSERT_TRUE(registry.Has("proxy.pool.reused"));
  ASSERT_TRUE(registry.Has("proxy.spliced_bytes"));
  ASSERT_TRUE(RunUntilCompleted(rig, 100, Sec(10)));
  double requests = 0;
  for (const MetricSample& s : registry.Snapshot()) {
    if (s.name == "proxy.requests") {
      requests = s.value;
    }
  }
  EXPECT_GE(requests, 100.0);
}

// Proxy request/response flow events reach the tracer with the documented
// payload slots.
TEST(ProxyE2eTest, FlowTracerSeesProxyEvents) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 1 << 20;
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;
  OriginServerConfig origin_cfg;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 2;
  client_cfg.num_objects = 10;
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);
  FlowTracer tracer;
  tracer.SetGlobal(true);
  rig.proxy->set_flow_tracer(&tracer);
  ASSERT_TRUE(RunUntilCompleted(rig, 50, Sec(10)));
  uint64_t reqs = 0;
  uint64_t resps = 0;
  for (const FlowEvent& e : tracer.Events()) {
    if (e.type == FlowEventType::kProxyRequest) {
      ++reqs;
    } else if (e.type == FlowEventType::kProxyResponse) {
      ++resps;
    }
  }
  EXPECT_GE(reqs, 50u);
  EXPECT_GE(resps, 50u);
}

}  // namespace
}  // namespace tas
