// Tests for per-packet latency anatomy (src/trace/latency): ring-overflow
// semantics, stale-stamp rejection, the partition invariant under batching,
// passivity (stamping must not perturb the simulation), JSON round-trip,
// and the CI regression comparator.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/app/rpc_echo.h"
#include "src/harness/experiment.h"
#include "src/trace/latency.h"
#include "src/trace/tracer.h"

namespace tas {
namespace {

TEST(LatencyTracerTest, RingOverflowDropsOldestWithoutCorruptingLive) {
  LatencyTracer tracer(4);
  // Fill the ring with four in-flight records.
  uint64_t ids[5];
  for (int i = 0; i < 4; ++i) {
    ids[i] = tracer.Begin(0);
    tracer.Stamp(ids[i], LatencyStage::kFpTx, 100);
  }
  EXPECT_EQ(tracer.overwritten(), 0u);

  // A fifth Begin wraps onto the first record's slot: the oldest record is
  // dropped and counted, the other three stay live.
  ids[4] = tracer.Begin(50);
  EXPECT_EQ(tracer.overwritten(), 1u);

  // Late stamps for the dropped record fail the id check, not corrupt the
  // new occupant.
  tracer.Stamp(ids[0], LatencyStage::kLinkWire, 200);
  tracer.Finish(ids[0], LatencyStage::kFpRx, 300);
  EXPECT_EQ(tracer.stale(), 2u);
  EXPECT_EQ(tracer.completed(), 0u);

  // Every live record (including the overwriting one) finishes cleanly with
  // intact accounting.
  for (int i = 1; i < 5; ++i) {
    tracer.Finish(ids[i], LatencyStage::kFpRx, 400);
  }
  EXPECT_EQ(tracer.completed(), 4u);
  EXPECT_EQ(tracer.partition_mismatches(), 0u);
  // The overwriting record started at t=50 with no earlier stamps: its whole
  // 350 ns lifetime lands in fp_rx, untouched by the dead record's history.
  EXPECT_EQ(tracer.stage_stats(LatencyStage::kFpRx).max(), 350.0);
}

TEST(LatencyTracerTest, AbandonRetiresWithoutFolding) {
  LatencyTracer tracer(8);
  const uint64_t id = tracer.Begin(0);
  tracer.Stamp(id, LatencyStage::kFpTx, 10);
  tracer.Abandon(id);
  EXPECT_EQ(tracer.abandoned(), 1u);
  EXPECT_EQ(tracer.completed(), 0u);
  EXPECT_EQ(tracer.stage_stats(LatencyStage::kFpTx).count(), 0u);
  // Abandoning twice (drop observed at two sites) is not an error.
  tracer.Abandon(id);
  EXPECT_EQ(tracer.abandoned(), 1u);
  // And id 0 ("untracked") is always ignored.
  tracer.Stamp(0, LatencyStage::kFpTx, 20);
  tracer.Finish(0, LatencyStage::kFpRx, 30);
  tracer.Abandon(0);
  EXPECT_EQ(tracer.stale(), 0u);
}

TEST(LatencyTracerTest, ReportJsonRoundTrips) {
  LatencyTracer tracer(16);
  for (int i = 0; i < 10; ++i) {
    const uint64_t id = tracer.Begin(i * 1000);
    tracer.Stamp(id, LatencyStage::kCtxQueue, i * 1000 + 200);
    tracer.Stamp(id, LatencyStage::kFpTx, i * 1000 + 500);
    tracer.Finish(id, LatencyStage::kFpRx, i * 1000 + 900 + i);
  }
  const LatencyReport report = tracer.Report();
  bool ok = false;
  const LatencyReport parsed = ParseLatencyReportJson(report.ToJson(), &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(parsed.completed, report.completed);
  EXPECT_EQ(parsed.abandoned, report.abandoned);
  ASSERT_EQ(parsed.stages.size(), report.stages.size());
  for (size_t i = 0; i < report.stages.size(); ++i) {
    EXPECT_EQ(parsed.stages[i].stage, report.stages[i].stage);
    EXPECT_EQ(parsed.stages[i].cls, report.stages[i].cls);
    EXPECT_EQ(parsed.stages[i].count, report.stages[i].count);
    EXPECT_EQ(parsed.stages[i].p50_ns, report.stages[i].p50_ns);
    EXPECT_EQ(parsed.stages[i].p99_ns, report.stages[i].p99_ns);
    // mean_ns is serialized with one decimal.
    EXPECT_NEAR(parsed.stages[i].mean_ns, report.stages[i].mean_ns, 0.05);
  }
  EXPECT_FALSE(ParseLatencyReportJson("not a report", &ok).completed);
  EXPECT_FALSE(ok);
}

// Builds a report with enough samples per stage for the comparator to gate.
// The stamp intervals are chosen so a 1.2x scale stays inside each value's
// power-of-two histogram bucket: the bucketed p99s are then identical across
// scales and only the (exact) means move, keeping the pass/fail boundary of
// the tolerance gate deterministic.
LatencyReport SyntheticReport(double scale) {
  LatencyTracer tracer(256);
  for (int i = 0; i < 100; ++i) {
    const TimeNs base = i * 10000;
    const uint64_t id = tracer.Begin(base);
    tracer.Stamp(id, LatencyStage::kCtxQueue, base + static_cast<TimeNs>(300 * scale));
    tracer.Stamp(id, LatencyStage::kFpTx, base + static_cast<TimeNs>(1050 * scale));
    tracer.Finish(id, LatencyStage::kFpRx, base + static_cast<TimeNs>(2500 * scale) + i);
  }
  return tracer.Report();
}

TEST(LatencyComparatorTest, TwentyPercentPerturbationFailsIdenticalPasses) {
  const LatencyReport baseline = SyntheticReport(1.0);
  // Identical run: no violations even at zero tolerance.
  EXPECT_TRUE(CompareLatencyReports(baseline, baseline, 0.0).empty());

  // A +20% per-stage cost perturbation must trip a 10% gate...
  const LatencyReport slower = SyntheticReport(1.2);
  const auto violations = CompareLatencyReports(baseline, slower, 0.10);
  ASSERT_FALSE(violations.empty());
  for (const auto& v : violations) {
    EXPECT_GT(v.ratio, 1.10);
    EXPECT_GT(v.current, v.baseline);
  }
  // ...and pass a 30% gate.
  EXPECT_TRUE(CompareLatencyReports(baseline, slower, 0.30).empty());

  // A tail-only regression (p99 doubled, means untouched) is caught too.
  LatencyReport tail = baseline;
  for (auto& s : tail.stages) {
    if (s.stage == "fp_rx") {
      s.p99_ns *= 2;
    }
  }
  const auto tail_violations = CompareLatencyReports(baseline, tail, 0.5);
  ASSERT_EQ(tail_violations.size(), 1u);
  EXPECT_EQ(tail_violations[0].stage, "fp_rx");
  EXPECT_EQ(tail_violations[0].metric, "p99_ns");

  // Improvements always pass.
  const LatencyReport faster = SyntheticReport(0.8);
  EXPECT_TRUE(CompareLatencyReports(baseline, faster, 0.0).empty());

  // Stages under the sample floor are skipped: a tiny baseline gates nothing.
  LatencyTracer small(16);
  const uint64_t id = small.Begin(0);
  small.Finish(id, LatencyStage::kFpRx, 100);
  EXPECT_TRUE(CompareLatencyReports(small.Report(), slower, 0.0).empty());
}

struct LatencyRun {
  uint64_t ops = 0;
  uint64_t completed = 0;
  uint64_t partition_mismatches = 0;
  uint64_t overwritten = 0;
  LatencyReport report;
  std::string server_flow_events;  // Byte-identity probe.
};

// The batching_test echo workload (two TAS-LowLevel hosts, clean seeded
// link) with per-packet stage stamping toggled per run. Host 0 is built
// first, so its tracer is the installed global stamp sink. `star` routes the
// pair through a switch (exercising the switch_queue stage and a second
// link hop) instead of a direct point-to-point link.
LatencyRun RunEcho(int rx_batch, bool latency, bool star = false) {
  TasConfig tas_config;
  tas_config.trace.flow_events = true;
  tas_config.trace.latency_stages = latency;
  tas_config.rx_batch_size = rx_batch;
  tas_config.app_event_batch = rx_batch;

  HostSpec spec;
  spec.stack = StackKind::kTasLowLevel;
  spec.app_cores = 1;
  spec.tas = tas_config;
  spec.tas_overridden = true;

  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  link.rng_seed = 23;
  auto exp = star ? Experiment::Star({spec, spec}, {link, link})
                  : Experiment::PointToPoint(spec, spec, link);

  EchoServerConfig sc;
  EchoServer server(exp->host_sim(0), exp->host(0).stack(), sc);
  server.Start();
  EchoClientConfig cc;
  cc.server_ip = exp->host(0).ip();
  cc.num_connections = 8;
  cc.pipeline_depth = 8;
  EchoClient client(exp->host_sim(1), exp->host(1).stack(), cc);
  client.Start();
  exp->sim().RunUntil(Ms(20));

  LatencyRun out;
  out.ops = client.completed();
  const LatencyTracer& lt = exp->host(0).tas()->tracer().latency();
  out.completed = lt.completed();
  out.partition_mismatches = lt.partition_mismatches();
  out.overwritten = lt.overwritten();
  out.report = lt.Report();
  std::ostringstream sf;
  exp->host(0).tas()->tracer().WriteFlowEventsJsonl(sf);
  out.server_flow_events = sf.str();
  return out;
}

TEST(LatencyAnatomyTest, PartitionInvariantHoldsAcrossBatchSizes) {
  const LatencyRun serial = RunEcho(1, true);
  const LatencyRun batched = RunEcho(16, true);

  // Stamps must cover every packet's lifetime with no gaps or double
  // charges, at batch size 1 and with multi-packet bursts alike.
  ASSERT_GT(serial.completed, 500u);
  ASSERT_GT(batched.completed, 500u);
  EXPECT_EQ(serial.partition_mismatches, 0u);
  EXPECT_EQ(batched.partition_mismatches, 0u);
  EXPECT_EQ(serial.overwritten, 0u);
  EXPECT_EQ(batched.overwritten, 0u);

  // Batching legitimately moves early burst members to the batch horizon, so
  // stage sums differ across batch sizes — but the overall journey time must
  // stay in the same regime.
  const LatencyStageSummary* e2e_serial = serial.report.Find("e2e");
  const LatencyStageSummary* e2e_batched = batched.report.Find("e2e");
  ASSERT_NE(e2e_serial, nullptr);
  ASSERT_NE(e2e_batched, nullptr);
  ASSERT_GT(e2e_serial->mean_ns, 0.0);
  const double ratio = e2e_batched->mean_ns / e2e_serial->mean_ns;
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(LatencyAnatomyTest, StageSumsAreConsistentWithEndToEnd) {
  const LatencyRun run = RunEcho(16, true, /*star=*/true);
  ASSERT_GT(run.completed, 0u);
  EXPECT_EQ(run.partition_mismatches, 0u);

  // Per record, stage intervals partition [Begin, Finish) exactly, so the
  // stage totals (mean x count) must sum to the e2e total.
  const LatencyStageSummary* e2e = run.report.Find("e2e");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count, run.completed);
  double stage_total = 0;
  double queue_total = 0;
  double service_total = 0;
  for (int i = 0; i < kNumLatencyStages; ++i) {
    const LatencyStage stage = static_cast<LatencyStage>(i);
    const LatencyStageSummary* s = run.report.Find(LatencyStageName(stage));
    ASSERT_NE(s, nullptr) << LatencyStageName(stage);
    stage_total += s->mean_ns * static_cast<double>(s->count);
    (LatencyStageIsQueue(stage) ? queue_total : service_total) +=
        s->mean_ns * static_cast<double>(s->count);
  }
  const double e2e_total = e2e->mean_ns * static_cast<double>(e2e->count);
  EXPECT_NEAR(stage_total, e2e_total, e2e_total * 1e-9 + 1.0);

  // The synthetic class rows decompose the same total.
  const LatencyStageSummary* queue = run.report.Find("queue_wait");
  const LatencyStageSummary* service = run.report.Find("service");
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(service, nullptr);
  EXPECT_NEAR(queue->mean_ns * static_cast<double>(queue->count), queue_total,
              e2e_total * 1e-9 + 1.0);
  EXPECT_NEAR(service->mean_ns * static_cast<double>(service->count), service_total,
              e2e_total * 1e-9 + 1.0);

  // The echo path actually exercises every stage.
  for (int i = 0; i < kNumLatencyStages; ++i) {
    const LatencyStageSummary* s =
        run.report.Find(LatencyStageName(static_cast<LatencyStage>(i)));
    EXPECT_GT(s->count, 0u) << s->stage;
  }
}

TEST(LatencyAnatomyTest, StampingIsPassiveAndOffRunsAreByteIdentical) {
  // Tracing off: reruns are byte-identical (the pre-PR determinism bar).
  const LatencyRun off_a = RunEcho(16, false);
  const LatencyRun off_b = RunEcho(16, false);
  EXPECT_EQ(off_a.server_flow_events, off_b.server_flow_events);
  EXPECT_EQ(off_a.ops, off_b.ops);
  EXPECT_EQ(off_a.completed, 0u);  // No tracer installed: nothing recorded.

  // Tracing on observes the run without perturbing it: the simulated
  // trajectory (flow events, workload progress) is byte-identical to the
  // tracing-off run.
  const LatencyRun on = RunEcho(16, true);
  EXPECT_EQ(on.server_flow_events, off_a.server_flow_events);
  EXPECT_EQ(on.ops, off_a.ops);
  EXPECT_GT(on.completed, 0u);
}

}  // namespace
}  // namespace tas
