// Tests for the TAS slow-path connection FSM under adverse conditions:
// handshake packet loss and retransmission, teardown (both directions,
// FIN loss), handshake-failure reporting, and listener behavior.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/tas/slow_path.h"

namespace tas {
namespace {

class ConnTracker : public AppHandler {
 public:
  explicit ConnTracker(Stack* stack) : stack_(stack) {}
  void OnConnected(ConnId conn, bool ok) override {
    (ok ? connected_ : failed_)++;
    last_ = conn;
  }
  void OnAccepted(ConnId conn, uint16_t) override {
    ++accepted_;
    last_ = conn;
  }
  void OnRemoteClosed(ConnId conn) override {
    ++remote_closed_;
    if (auto_close_) {
      stack_->Close(conn);
    }
  }
  void OnClosed(ConnId) override { ++fully_closed_; }

  Stack* stack_;
  int connected_ = 0;
  int failed_ = 0;
  int accepted_ = 0;
  int remote_closed_ = 0;
  int fully_closed_ = 0;
  bool auto_close_ = true;
  ConnId last_ = kInvalidConn;
};

std::unique_ptr<Experiment> TasPair(double drop_rate = 0.0) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  if (drop_rate > 0) {
    link.faults.Add(BernoulliLoss(drop_rate));
  }
  return Experiment::PointToPoint(spec, spec, link);
}

TEST(SlowPathFsmTest, HandshakeSurvivesHeavyLoss) {
  // 20% loss: SYN/SYN-ACK/ACK all get dropped sometimes; the slow path's
  // backoff retransmission must still establish every connection.
  auto exp = TasPair(0.20);
  ConnTracker server(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&server);
  exp->host(0).stack()->Listen(6000);
  ConnTracker client(exp->host(1).stack());
  exp->host(1).stack()->SetHandler(&client);
  for (int i = 0; i < 16; ++i) {
    exp->host(1).stack()->Connect(exp->host(0).ip(), 6000);
  }
  exp->sim().RunUntil(Sec(20));
  EXPECT_EQ(client.connected_, 16);
  EXPECT_EQ(server.accepted_, 16);
  EXPECT_EQ(client.failed_, 0);
}

TEST(SlowPathFsmTest, GracefulCloseFromInitiator) {
  auto exp = TasPair();
  ConnTracker server(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&server);
  exp->host(0).stack()->Listen(6000);
  ConnTracker client(exp->host(1).stack());
  exp->host(1).stack()->SetHandler(&client);
  const ConnId conn = exp->host(1).stack()->Connect(exp->host(0).ip(), 6000);
  exp->sim().RunUntil(Ms(10));
  ASSERT_EQ(client.connected_, 1);

  exp->host(1).stack()->Close(conn);
  exp->sim().RunUntil(Ms(100));
  // Server learned of the close; both flow tables drained.
  EXPECT_EQ(server.remote_closed_, 1);
  EXPECT_EQ(exp->host(0).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);
  EXPECT_GT(exp->host(1).tas()->stats().connections_closed, 0u);
}

TEST(SlowPathFsmTest, CloseCompletesUnderLoss) {
  auto exp = TasPair(0.15);
  ConnTracker server(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&server);
  exp->host(0).stack()->Listen(6000);
  ConnTracker client(exp->host(1).stack());
  exp->host(1).stack()->SetHandler(&client);
  const ConnId conn = exp->host(1).stack()->Connect(exp->host(0).ip(), 6000);
  exp->sim().RunUntil(Sec(5));
  ASSERT_EQ(client.connected_, 1);
  exp->host(1).stack()->Close(conn);
  exp->sim().RunUntil(Sec(30));  // FIN/ACK losses need retransmission rounds.
  EXPECT_EQ(exp->host(0).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);
}

TEST(SlowPathFsmTest, ConnectToNonListenerFailsCleanly) {
  auto exp = TasPair();
  ConnTracker client(exp->host(1).stack());
  exp->host(1).stack()->SetHandler(&client);
  exp->host(1).stack()->Connect(exp->host(0).ip(), 4444);
  exp->sim().RunUntil(Sec(30));  // Exhaust handshake retries.
  EXPECT_EQ(client.connected_, 0);
  EXPECT_EQ(client.failed_, 1);
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);  // State reclaimed.
}

TEST(SlowPathFsmTest, ManyListenersDemuxByPort) {
  auto exp = TasPair();
  ConnTracker server(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&server);
  for (uint16_t port = 7000; port < 7008; ++port) {
    exp->host(0).stack()->Listen(port);
  }
  ConnTracker client(exp->host(1).stack());
  exp->host(1).stack()->SetHandler(&client);
  for (uint16_t port = 7000; port < 7008; ++port) {
    exp->host(1).stack()->Connect(exp->host(0).ip(), port);
  }
  exp->sim().RunUntil(Ms(50));
  EXPECT_EQ(server.accepted_, 8);
  EXPECT_EQ(client.connected_, 8);
}

TEST(SlowPathFsmTest, DataPacketsNeverReachSlowPathSteadyState) {
  auto exp = TasPair();
  ConnTracker server(exp->host(0).stack());
  server.auto_close_ = false;
  exp->host(0).stack()->SetHandler(&server);
  exp->host(0).stack()->Listen(6000);
  ConnTracker client(exp->host(1).stack());
  exp->host(1).stack()->SetHandler(&client);
  const ConnId conn = exp->host(1).stack()->Connect(exp->host(0).ip(), 6000);
  exp->sim().RunUntil(Ms(10));
  const uint64_t exceptions_after_handshake =
      exp->host(0).tas()->stats().slowpath_packets;

  // Push a burst of data; nothing new should hit the slow path.
  uint8_t chunk[1024] = {};
  for (int i = 0; i < 50; ++i) {
    exp->host(1).stack()->Send(conn, chunk, sizeof(chunk));
  }
  exp->sim().RunUntil(Ms(50));
  EXPECT_EQ(exp->host(0).tas()->stats().slowpath_packets, exceptions_after_handshake);
  EXPECT_GT(exp->host(0).tas()->stats().fastpath_rx_packets, 30u);
}

TEST(SlowPathFsmTest, SimultaneousCloseResolves) {
  auto exp = TasPair();
  ConnTracker server(exp->host(0).stack());
  server.auto_close_ = false;
  exp->host(0).stack()->SetHandler(&server);
  exp->host(0).stack()->Listen(6000);
  ConnTracker client(exp->host(1).stack());
  client.auto_close_ = false;
  exp->host(1).stack()->SetHandler(&client);
  const ConnId conn = exp->host(1).stack()->Connect(exp->host(0).ip(), 6000);
  exp->sim().RunUntil(Ms(10));
  ASSERT_EQ(client.connected_, 1);
  ASSERT_EQ(server.accepted_, 1);
  // Both ends close at (nearly) the same instant.
  exp->host(1).stack()->Close(conn);
  exp->host(0).stack()->Close(server.last_);
  exp->sim().RunUntil(Sec(5));
  EXPECT_EQ(exp->host(0).tas()->num_flows(), 0u);
  EXPECT_EQ(exp->host(1).tas()->num_flows(), 0u);
}

}  // namespace
}  // namespace tas
