// Tests for the experiment harness: cluster builders, the flow generator
// used by the congestion-control figures, cycle accounting helpers, and the
// table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "src/harness/experiment.h"
#include "src/harness/flowgen.h"
#include "src/harness/table.h"

namespace tas {
namespace {

TEST(ExperimentTest, StarBuildsRequestedHosts) {
  std::vector<HostSpec> specs(3);
  specs[0].stack = StackKind::kTas;
  specs[1].stack = StackKind::kLinux;
  specs[2].stack = StackKind::kIx;
  auto exp = Experiment::Star(specs, {LinkConfig{}});
  ASSERT_EQ(exp->num_hosts(), 3u);
  EXPECT_NE(exp->host(0).tas(), nullptr);
  EXPECT_EQ(exp->host(0).engine(), nullptr);
  EXPECT_EQ(exp->host(1).tas(), nullptr);
  EXPECT_NE(exp->host(1).engine(), nullptr);
  EXPECT_NE(exp->host(0).ip(), exp->host(1).ip());
}

TEST(ExperimentTest, CustomTopologyAssignsSpecsRoundRobin) {
  HostSpec spec;
  spec.stack = StackKind::kIx;
  auto exp = Experiment::Custom(
      [](Simulator* sim, SimPartition* partition) {
        FatTreeConfig config;
        config.k = 2;
        config.hosts_per_edge = 2;
        return MakeFatTree(sim, config, partition);
      },
      {spec});
  EXPECT_EQ(exp->num_hosts(), 4u);  // k=2: 2 pods x 1 edge x 2 hosts.
  for (size_t i = 0; i < exp->num_hosts(); ++i) {
    EXPECT_NE(exp->host(i).engine(), nullptr);
  }
}

TEST(ExperimentTest, StackKindNamesAreDistinct) {
  std::set<std::string> names;
  for (StackKind kind : {StackKind::kTas, StackKind::kTasLowLevel, StackKind::kLinux,
                         StackKind::kIx, StackKind::kMtcp}) {
    names.insert(StackKindName(kind));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(ExperimentTest, TotalCyclesAggregatesAppAndStack) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, LinkConfig{});
  exp->host(0).app_core(0)->Charge(CpuModule::kApp, 1000);
  exp->host(0).tas()->fastpath_cpu(0)->Charge(CpuModule::kTcp, 500);
  EXPECT_EQ(exp->host(0).TotalCycles(CpuModule::kApp), 1000u);
  EXPECT_GE(exp->host(0).TotalCycles(CpuModule::kTcp), 500u);
  EXPECT_GE(exp->host(0).TotalCycles(), 1500u);
}

TEST(FlowGenTest, FlowsCompleteAndFctsRecorded) {
  HostSpec spec;
  spec.stack = StackKind::kIx;
  spec.engine_overridden = true;
  spec.engine = IxStackConfig();
  spec.engine.costs = &MinimalCostModel();
  LinkConfig link;
  link.gbps = 10.0;
  auto exp = Experiment::PointToPoint(spec, spec, link);

  FlowSink sink(exp->host_sim(0), exp->host(0).stack(), 9000);
  sink.Start();
  FlowGenConfig gen;
  gen.destinations = {{exp->host(0).ip(), 9000}};
  gen.mean_interarrival = Us(500);
  gen.pareto_min_bytes = 2896;
  gen.pareto_max_bytes = 100000;
  FlowSource source(exp->host_sim(1), exp->host(1).stack(), gen);
  source.Start();
  source.BeginMeasurement();
  exp->sim().RunUntil(Ms(100));

  EXPECT_GT(source.flows_started(), 100u);
  // Nearly all started flows complete (a few are in flight at the horizon).
  EXPECT_GT(source.flows_completed() + 20, source.flows_started());
  EXPECT_GT(sink.bytes_received(), 100000u);
  EXPECT_GT(source.fct_ms_all().count(), 50u);
  // Short flows finish faster than long ones on average.
  if (source.fct_ms_short().count() > 10 && source.fct_ms_long().count() > 10) {
    EXPECT_LT(source.fct_ms_short().Mean(), source.fct_ms_long().Mean());
  }
}

TEST(FlowGenTest, SinkRoleDrainsIncomingFlows) {
  HostSpec spec;
  spec.stack = StackKind::kIx;
  spec.engine_overridden = true;
  spec.engine = IxStackConfig();
  spec.engine.costs = &MinimalCostModel();
  auto exp = Experiment::PointToPoint(spec, spec, LinkConfig{});

  FlowGenConfig gen;
  gen.destinations = {{exp->host(0).ip(), 9000}};
  gen.mean_interarrival = Ms(1);
  FlowSource a(exp->host_sim(0), exp->host(0).stack(), gen);
  a.Start();
  a.AlsoSink(9000);
  FlowGenConfig gen_b = gen;
  gen_b.destinations = {{exp->host(0).ip(), 9000}};
  gen_b.rng_seed = 123;
  FlowSource b(exp->host_sim(1), exp->host(1).stack(), gen_b);
  b.Start();
  b.AlsoSink(9000);
  exp->sim().RunUntil(Ms(100));
  EXPECT_GT(b.flows_completed(), 20u);  // b -> a flows drained by a's sink role.
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow("x", 1);
  table.AddRow("yyyy", 123456);
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("LongHeader"), std::string::npos);
  EXPECT_NE(text.find("123456"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TablePrinterTest, FormatsDoublesWithTwoDigits) {
  TablePrinter table({"v"});
  table.AddRow(3.14159);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14159"), std::string::npos);
}

TEST(ScaleTest, PickHonorsEnvironment) {
  unsetenv("TAS_SCALE");
  EXPECT_FALSE(FullScale());
  EXPECT_EQ(ScalePick(10, 100), 10u);
  setenv("TAS_SCALE", "full", 1);
  EXPECT_TRUE(FullScale());
  EXPECT_EQ(ScalePick(10, 100), 100u);
  unsetenv("TAS_SCALE");
}

}  // namespace
}  // namespace tas
