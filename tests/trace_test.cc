// Tests for the unified tracing & metrics layer (src/trace) — the registry,
// flow-event tracer, time-series sampler, span recorder, exporters — and for
// the end-to-end wiring: a lossy TAS transfer must emit handshake,
// retransmit and cc-update events in order with monotone timestamps, produce
// syntactically valid Perfetto/JSONL output, and be byte-identical across
// two same-seed runs.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "src/app/bulk.h"
#include "src/harness/experiment.h"
#include "src/trace/tracer.h"

namespace tas {
namespace {

// --- Minimal JSON syntax checker -------------------------------------------
// Validates structure (objects, arrays, strings, numbers, literals) without
// building a tree; enough to catch any malformed exporter output.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : p_(s.data()), end_(s.data() + s.size()) {}

  bool Valid() {
    Ws();
    if (!Value()) {
      return false;
    }
    Ws();
    return p_ == end_;
  }

 private:
  bool Value() {
    if (p_ == end_) {
      return false;
    }
    switch (*p_) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++p_;  // '{'
    Ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      Ws();
      if (!String()) {
        return false;
      }
      Ws();
      if (p_ == end_ || *p_ != ':') {
        return false;
      }
      ++p_;
      Ws();
      if (!Value()) {
        return false;
      }
      Ws();
      if (p_ == end_) {
        return false;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      if (*p_ != ',') {
        return false;
      }
      ++p_;
    }
  }

  bool Array() {
    ++p_;  // '['
    Ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      Ws();
      if (!Value()) {
        return false;
      }
      Ws();
      if (p_ == end_) {
        return false;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      if (*p_ != ',') {
        return false;
      }
      ++p_;
    }
  }

  bool String() {
    if (p_ == end_ || *p_ != '"') {
      return false;
    }
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) {
          return false;
        }
      }
      ++p_;
    }
    if (p_ == end_) {
      return false;
    }
    ++p_;
    return true;
  }

  bool Number() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    bool digits = false;
    while (p_ != end_ && (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p_));
      ++p_;
    }
    return digits && p_ != start;
  }

  bool Literal(const char* lit) {
    for (const char* q = lit; *q != '\0'; ++q, ++p_) {
      if (p_ == end_ || *p_ != *q) {
        return false;
      }
    }
    return true;
  }

  void Ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  const char* p_;
  const char* end_;
};

bool ValidJson(const std::string& s) { return JsonChecker(s).Valid(); }

bool ValidJsonl(const std::string& s) {
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (!ValidJson(line)) {
      return false;
    }
  }
  return true;
}

// --- Unit tests: the trace primitives --------------------------------------

TEST(MetricRegistryTest, SnapshotDiffAndJson) {
  uint64_t pkts = 10;
  double depth = 3.0;
  MetricRegistry reg;
  reg.AddCounter("a.pkts", &pkts);
  reg.AddCounterFn("a.double_pkts", [&pkts] { return pkts * 2; });
  reg.AddGauge("a.depth", [&depth] { return depth; });
  EXPECT_TRUE(reg.Has("a.pkts"));
  EXPECT_FALSE(reg.Has("a.nope"));

  const MetricSnapshot before = reg.Snapshot();
  ASSERT_EQ(before.size(), 3u);
  // Sorted by name.
  EXPECT_EQ(before[0].name, "a.depth");
  EXPECT_EQ(before[1].name, "a.double_pkts");
  EXPECT_EQ(before[2].name, "a.pkts");
  EXPECT_DOUBLE_EQ(before[2].value, 10.0);

  pkts += 5;
  depth = 7.0;
  const MetricSnapshot after = reg.Snapshot();
  const MetricSnapshot diff = MetricRegistry::Diff(before, after);
  ASSERT_EQ(diff.size(), 3u);
  EXPECT_DOUBLE_EQ(diff[0].value, 7.0);   // Gauge: point-in-time.
  EXPECT_DOUBLE_EQ(diff[1].value, 10.0);  // Counter: delta.
  EXPECT_DOUBLE_EQ(diff[2].value, 5.0);   // Counter: delta.

  std::ostringstream os;
  reg.WriteJsonl(os);
  EXPECT_TRUE(ValidJsonl(os.str()));
  EXPECT_NE(os.str().find("\"a.pkts\""), std::string::npos);
}

TEST(TimeSeriesTest, DecimatesDeterministically) {
  TimeSeries series("s", 16);
  for (int i = 0; i < 10000; ++i) {
    series.Append(i, i);
  }
  EXPECT_EQ(series.appended(), 10000u);
  EXPECT_LE(series.points().size(), 16u);
  EXPECT_GE(series.points().size(), 4u);
  for (size_t i = 1; i < series.points().size(); ++i) {
    EXPECT_LT(series.points()[i - 1].first, series.points()[i].first);
  }
  // Same input -> same decimation.
  TimeSeries again("s", 16);
  for (int i = 0; i < 10000; ++i) {
    again.Append(i, i);
  }
  EXPECT_EQ(series.points(), again.points());
}

TEST(FlowTracerTest, RingOverwritesOldest) {
  FlowTracer tracer(8);
  tracer.SetGlobal(true);
  for (int i = 0; i < 20; ++i) {
    tracer.Record(i * 10, 1, FlowEventType::kDataTx, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.overwritten(), 12u);
  const std::vector<FlowEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().a, 12u);  // Oldest surviving record.
  EXPECT_EQ(events.back().a, 19u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].t, events[i].t);
  }
}

TEST(FlowTracerTest, PerFlowEnableFilters) {
  FlowTracer tracer(64);
  tracer.EnableFlow(7);
  tracer.Record(1, 7, FlowEventType::kDataTx);
  tracer.Record(2, 8, FlowEventType::kDataTx);
  EXPECT_TRUE(tracer.enabled(7));
  EXPECT_FALSE(tracer.enabled(8));
  ASSERT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.Events()[0].flow, 7u);
}

TEST(SpanRecorderTest, DropsNewestAtCapacity) {
  SpanRecorder spans(2);
  spans.SetEnabled(true);
  spans.Record(0, "a", 0, 10);
  spans.Record(0, "b", 10, 20);
  spans.Record(0, "c", 20, 30);
  EXPECT_EQ(spans.spans().size(), 2u);
  EXPECT_EQ(spans.dropped(), 1u);
}

TEST(SimulatorMetricsTest, PendingHighWaterAndRegistry) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.At(100 + i, [] {});
  }
  EXPECT_GE(sim.max_pending_events(), 5u);
  sim.RunUntil(1000);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_GE(sim.max_pending_events(), 5u);  // High-water survives the drain.

  MetricRegistry reg;
  RegisterSimulatorMetrics(&reg, &sim);
  EXPECT_TRUE(reg.Has("sim.events_executed"));
  EXPECT_TRUE(reg.Has("sim.pending_events"));
  EXPECT_TRUE(reg.Has("sim.max_pending_events"));
  const MetricSnapshot snap = reg.Snapshot();
  for (const MetricSample& s : snap) {
    if (s.name == "sim.max_pending_events") {
      EXPECT_GE(s.value, 5.0);
    }
  }
}

TEST(NetMetricsTest, LinkAndSwitchRegisterViews) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  LinkConfig link;
  link.gbps = 10.0;
  auto exp = Experiment::Star({spec, spec}, {link});

  MetricRegistry reg;
  exp->host_link(0)->RegisterMetrics(&reg, "link.h0");
  exp->net()->switch_at(0)->RegisterMetrics(&reg, "switch");
  EXPECT_TRUE(reg.Has("link.h0.d0.tx_packets"));
  EXPECT_TRUE(reg.Has("link.h0.d1.drops_induced"));
  EXPECT_TRUE(reg.Has("link.h0.d0.queue_pkts"));
  EXPECT_TRUE(reg.Has("switch.forwarded"));
  EXPECT_TRUE(reg.Has("switch.port.0.queue_pkts"));

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 1;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();
  exp->sim().RunUntil(Ms(5));

  double forwarded = 0, tx_pkts = 0;
  for (const MetricSample& s : reg.Snapshot()) {
    if (s.name == "switch.forwarded") {
      forwarded = s.value;
    } else if (s.name == "link.h0.d0.tx_packets" || s.name == "link.h0.d1.tx_packets") {
      tx_pkts += s.value;
    }
  }
  EXPECT_GT(forwarded, 0.0);
  EXPECT_GT(tx_pkts, 0.0);
}

// --- End-to-end: lossy transfer through the full TAS wiring ----------------

struct TraceRun {
  std::string metrics;
  std::string flow_events;
  std::string timeseries;
  std::string perfetto;
  std::vector<FlowEvent> events;  // Sender-side, ring order.
  uint64_t retransmits = 0;
};

TraceRun RunLossyTransfer() {
  TasConfig tas_config;
  tas_config.trace.flow_events = true;
  tas_config.trace.cpu_spans = true;
  tas_config.trace.sample_period = Us(100);
  tas_config.trace.sample_flows = true;

  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.app_cores = 2;
  spec.tas = tas_config;
  spec.tas_overridden = true;

  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 128;
  link.drop_rate = 0.02;
  link.rng_seed = 11;  // Fixed seed: byte-identical reruns.
  auto exp = Experiment::PointToPoint(spec, spec, link);

  BulkReceiver rx(exp->host_sim(0), exp->host(0).stack(), BulkReceiverConfig{});
  rx.Start();
  BulkSenderConfig sc;
  sc.server_ip = exp->host(0).ip();
  sc.num_flows = 2;
  BulkSender tx(exp->host_sim(1), exp->host(1).stack(), sc);
  tx.Start();
  exp->sim().RunUntil(Ms(30));

  TraceRun out;
  const Tracer& tracer = exp->host(1).tas()->tracer();  // Sender side.
  std::ostringstream m, f, t, p;
  tracer.WriteMetricsJsonl(m);
  tracer.WriteFlowEventsJsonl(f);
  tracer.WriteTimeSeriesJsonl(t);
  tracer.WritePerfettoJson(p);
  out.metrics = m.str();
  out.flow_events = f.str();
  out.timeseries = t.str();
  out.perfetto = p.str();
  out.events = tracer.flow_events().Events();
  const TasStats& stats = exp->host(1).tas()->stats();
  out.retransmits = stats.fast_retransmits + stats.timeout_retransmits;
  return out;
}

class LossyTraceTest : public ::testing::Test {
 protected:
  static const TraceRun& Run() {
    static const TraceRun run = RunLossyTransfer();
    return run;
  }
};

TEST_F(LossyTraceTest, HandshakeRetransmitAndCcUpdateInOrder) {
  const std::vector<FlowEvent>& events = Run().events;
  ASSERT_FALSE(events.empty());
  EXPECT_GT(Run().retransmits, 0u);  // 2% loss must trigger recovery.

  // Timestamps are monotone in ring order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t) << "at index " << i;
  }

  // For the first traced flow: handshake events precede data, data precedes
  // the first retransmit, and cc updates only happen once established.
  const uint64_t flow = events.front().flow;
  TimeNs established = -1;
  TimeNs first_data_tx = -1;
  TimeNs first_rexmit = -1;
  TimeNs first_cc = -1;
  bool saw_syn_tx = false;
  for (const FlowEvent& e : events) {
    if (e.flow != flow) {
      continue;
    }
    switch (e.type) {
      case FlowEventType::kSynTx:
        saw_syn_tx = true;
        break;
      case FlowEventType::kConnState:
        if (e.a == static_cast<uint64_t>(ConnState::kEstablished) && established < 0) {
          established = e.t;
        }
        break;
      case FlowEventType::kDataTx:
        if (first_data_tx < 0) {
          first_data_tx = e.t;
        }
        break;
      case FlowEventType::kFastRetransmit:
      case FlowEventType::kTimeoutRetransmit:
        if (first_rexmit < 0) {
          first_rexmit = e.t;
        }
        break;
      case FlowEventType::kCcUpdate:
        if (first_cc < 0) {
          first_cc = e.t;
        }
        break;
      default:
        break;
    }
  }
  // The ring may have rotated past the handshake for long runs; with a 64K
  // capacity and a 30 ms run it has not.
  EXPECT_TRUE(saw_syn_tx);
  ASSERT_GE(established, 0);
  ASSERT_GE(first_data_tx, 0);
  ASSERT_GE(first_cc, 0);
  EXPECT_LE(established, first_data_tx);
  EXPECT_LE(first_data_tx, first_cc);
  if (first_rexmit >= 0) {
    EXPECT_LE(first_data_tx, first_rexmit);
  }
}

TEST_F(LossyTraceTest, ExportsAreValidJson) {
  EXPECT_TRUE(ValidJsonl(Run().metrics));
  EXPECT_TRUE(ValidJsonl(Run().flow_events));
  EXPECT_TRUE(ValidJsonl(Run().timeseries));
  EXPECT_TRUE(ValidJson(Run().perfetto));
  // The Perfetto export carries all three record families.
  EXPECT_NE(Run().perfetto.find("\"ph\":\"X\""), std::string::npos);  // Spans.
  EXPECT_NE(Run().perfetto.find("\"ph\":\"i\""), std::string::npos);  // Flow events.
  EXPECT_NE(Run().perfetto.find("\"ph\":\"C\""), std::string::npos);  // Series.
  EXPECT_NE(Run().perfetto.find("fastpath-core-0"), std::string::npos);
  // The metric dump covers every layer that registered.
  EXPECT_NE(Run().metrics.find("tas.fastpath.rx_packets"), std::string::npos);
  EXPECT_NE(Run().metrics.find("nic.rx_packets"), std::string::npos);
  EXPECT_NE(Run().metrics.find("sim.events_executed"), std::string::npos);
  // The sampler produced per-flow and per-core series.
  EXPECT_NE(Run().timeseries.find("tas.core.0.util"), std::string::npos);
  EXPECT_NE(Run().timeseries.find("flow.0."), std::string::npos);
  EXPECT_NE(Run().timeseries.find("tas.active_cores"), std::string::npos);
}

TEST_F(LossyTraceTest, SameSeedRunsAreByteIdentical) {
  const TraceRun second = RunLossyTransfer();
  EXPECT_EQ(Run().metrics, second.metrics);
  EXPECT_EQ(Run().flow_events, second.flow_events);
  EXPECT_EQ(Run().timeseries, second.timeseries);
  EXPECT_EQ(Run().perfetto, second.perfetto);
}

}  // namespace
}  // namespace tas
