// Request-level causal tracing tests (DESIGN.md §12): span-tree assembly
// (including orphaned spans), critical-path extraction and its partition
// invariant, report JSON round-trips, the regression comparator, and
// end-to-end trace collection across the client/proxy/origin rig — span
// trees spanning hosts, coalesced-waiter fan-out links, same-seed
// byte-identical reruns with tracing on, and tracing-off passivity.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "src/harness/experiment.h"
#include "src/proxy/origin_server.h"
#include "src/proxy/proxy_client.h"
#include "src/proxy/proxy_server.h"
#include "src/trace/causal.h"

namespace tas {
namespace {

// ---------------------------------------------------------------------------
// Span-tree assembly.

CausalSpan MakeSpan(uint32_t id, uint32_t parent, CausalSpanKind kind) {
  CausalSpan s;
  s.id = id;
  s.parent = parent;
  s.kind = kind;
  return s;
}

TEST(SpanTreeTest, AssemblesParentChildChain) {
  std::vector<CausalSpan> spans;
  spans.push_back(MakeSpan(1, 0, CausalSpanKind::kRequest));
  spans.push_back(MakeSpan(2, 1, CausalSpanKind::kProxyJob));
  spans.push_back(MakeSpan(3, 2, CausalSpanKind::kOriginFetch));
  spans.push_back(MakeSpan(4, 3, CausalSpanKind::kOriginServe));
  const SpanTree tree = AssembleSpanTree(spans);
  ASSERT_EQ(tree.root, 0u);
  EXPECT_EQ(tree.orphans, 0u);
  ASSERT_EQ(tree.nodes.size(), 4u);
  ASSERT_EQ(tree.nodes[0].children.size(), 1u);
  EXPECT_EQ(tree.nodes[0].children[0], 1u);
  ASSERT_EQ(tree.nodes[1].children.size(), 1u);
  EXPECT_EQ(tree.nodes[1].children[0], 2u);
  ASSERT_EQ(tree.nodes[2].children.size(), 1u);
  EXPECT_EQ(tree.nodes[2].children[0], 3u);
  EXPECT_TRUE(tree.nodes[3].children.empty());
}

TEST(SpanTreeTest, SiblingsKeepInputOrder) {
  std::vector<CausalSpan> spans;
  spans.push_back(MakeSpan(10, 0, CausalSpanKind::kRequest));
  spans.push_back(MakeSpan(11, 10, CausalSpanKind::kProxyJob));
  spans.push_back(MakeSpan(12, 10, CausalSpanKind::kProxyJob));
  const SpanTree tree = AssembleSpanTree(spans);
  ASSERT_EQ(tree.root, 0u);
  ASSERT_EQ(tree.nodes[0].children.size(), 2u);
  EXPECT_EQ(tree.nodes[0].children[0], 1u);
  EXPECT_EQ(tree.nodes[0].children[1], 2u);
}

TEST(SpanTreeTest, MissingParentBecomesOrphanUnderRoot) {
  std::vector<CausalSpan> spans;
  spans.push_back(MakeSpan(1, 0, CausalSpanKind::kRequest));
  spans.push_back(MakeSpan(3, 99, CausalSpanKind::kOriginServe));  // 99 gone.
  const SpanTree tree = AssembleSpanTree(spans);
  ASSERT_EQ(tree.root, 0u);
  EXPECT_EQ(tree.orphans, 1u);
  ASSERT_EQ(tree.nodes[0].children.size(), 1u);
  EXPECT_EQ(tree.nodes[0].children[0], 1u);
  EXPECT_TRUE(tree.nodes[1].orphan);
}

TEST(SpanTreeTest, OrphanBeforeRootStillAttaches) {
  std::vector<CausalSpan> spans;
  spans.push_back(MakeSpan(5, 42, CausalSpanKind::kOriginFetch));  // Orphan first.
  spans.push_back(MakeSpan(1, 0, CausalSpanKind::kRequest));
  const SpanTree tree = AssembleSpanTree(spans);
  ASSERT_EQ(tree.root, 1u);
  EXPECT_EQ(tree.orphans, 1u);
  ASSERT_EQ(tree.nodes[1].children.size(), 1u);
  EXPECT_EQ(tree.nodes[1].children[0], 0u);
}

// ---------------------------------------------------------------------------
// Critical-path extraction.

TEST(CriticalPathTest, PartitionsEndToEndExactly) {
  std::vector<CausalMark> marks;
  marks.push_back(CausalMark{100, CausalEdge::kNetRequest});
  marks.push_back(CausalMark{150, CausalEdge::kCacheWork});
  marks.push_back(CausalMark{400, CausalEdge::kProxySend});
  marks.push_back(CausalMark{500, CausalEdge::kNetResponse});
  std::vector<CriticalPathEdge> out;
  ASSERT_TRUE(ExtractCriticalPath(0, 500, marks, &out));
  TimeNs sum = 0;
  for (const CriticalPathEdge& e : out) {
    sum += e.duration;
  }
  EXPECT_EQ(sum, 500);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].edge, CausalEdge::kNetRequest);
  EXPECT_EQ(out[0].duration, 100);
  EXPECT_EQ(out[3].edge, CausalEdge::kNetResponse);
  EXPECT_EQ(out[3].duration, 100);
}

TEST(CriticalPathTest, RepeatedEdgesAccumulate) {
  std::vector<CausalMark> marks;
  marks.push_back(CausalMark{10, CausalEdge::kOverflowQueue});
  marks.push_back(CausalMark{30, CausalEdge::kOriginQueue});
  marks.push_back(CausalMark{60, CausalEdge::kOverflowQueue});  // Redispatch.
  marks.push_back(CausalMark{100, CausalEdge::kNetResponse});
  std::vector<CriticalPathEdge> out;
  ASSERT_TRUE(ExtractCriticalPath(0, 100, marks, &out));
  ASSERT_EQ(out.size(), 3u);  // overflow_queue folded into one row.
  EXPECT_EQ(out[0].edge, CausalEdge::kOverflowQueue);
  EXPECT_EQ(out[0].duration, 10 + 30);
}

TEST(CriticalPathTest, RejectsBrokenChains) {
  std::vector<CriticalPathEdge> out;
  EXPECT_FALSE(ExtractCriticalPath(0, 100, {}, &out));  // No marks.
  std::vector<CausalMark> early;
  early.push_back(CausalMark{50, CausalEdge::kNetRequest});
  EXPECT_FALSE(ExtractCriticalPath(60, 100, early, &out));  // Before start.
  std::vector<CausalMark> short_chain;
  short_chain.push_back(CausalMark{50, CausalEdge::kNetResponse});
  EXPECT_FALSE(ExtractCriticalPath(0, 100, short_chain, &out));  // Last != end.
  std::vector<CausalMark> backwards;
  backwards.push_back(CausalMark{80, CausalEdge::kNetRequest});
  backwards.push_back(CausalMark{40, CausalEdge::kCacheWork});
  backwards.push_back(CausalMark{100, CausalEdge::kNetResponse});
  EXPECT_FALSE(ExtractCriticalPath(0, 100, backwards, &out));  // Non-monotone.
}

// ---------------------------------------------------------------------------
// CausalTracer unit behavior.

TEST(CausalTracerTest, FinishFoldsAndPartitions) {
  CausalTracer tracer(1u << 4);
  const uint64_t t = tracer.BeginTrace(1000);
  const uint32_t root = tracer.StartSpan(t, 0, CausalSpanKind::kRequest, 1000);
  ASSERT_NE(root, 0u);
  tracer.Mark(t, CausalEdge::kNetRequest, 1200);
  const uint32_t job = tracer.StartSpan(t, root, CausalSpanKind::kProxyJob, 1200);
  ASSERT_NE(job, 0u);
  tracer.Mark(t, CausalEdge::kCacheWork, 1250);
  tracer.Mark(t, CausalEdge::kProxySend, 1400);
  tracer.EndSpan(t, job, 1400);
  tracer.SetClass(t, RequestClass::kHit);
  tracer.EndSpan(t, root, 1600);
  tracer.Finish(t, 1600);

  EXPECT_EQ(tracer.completed(), 1u);
  EXPECT_EQ(tracer.critical_path_mismatches(), 0u);
  EXPECT_EQ(tracer.e2e_stats(RequestClass::kHit).count(), 1u);
  EXPECT_DOUBLE_EQ(tracer.e2e_stats(RequestClass::kHit).mean(), 600.0);
  // net_request 200 + cache_work 50 + proxy_send 150 + net_response 200.
  EXPECT_DOUBLE_EQ(tracer.edge_stats(RequestClass::kHit, CausalEdge::kNetRequest).mean(), 200.0);
  EXPECT_DOUBLE_EQ(tracer.edge_stats(RequestClass::kHit, CausalEdge::kNetResponse).mean(),
                   200.0);
  ASSERT_EQ(tracer.exemplars(RequestClass::kHit).size(), 1u);
  const TraceExemplar& ex = tracer.exemplars(RequestClass::kHit)[0];
  EXPECT_EQ(ex.trace_id, t);
  EXPECT_EQ(ex.spans.size(), 2u);
  const SpanTree tree = AssembleSpanTree(ex.spans);
  EXPECT_EQ(tree.orphans, 0u);
  EXPECT_EQ(tree.root, 0u);
}

TEST(CausalTracerTest, MissingClassCountsAsMismatch) {
  CausalTracer tracer(1u << 4);
  const uint64_t t = tracer.BeginTrace(0);
  tracer.Mark(t, CausalEdge::kNetResponse, 100);
  tracer.Finish(t, 100);  // No SetClass.
  EXPECT_EQ(tracer.critical_path_mismatches(), 1u);
}

TEST(CausalTracerTest, StaleAndAbandonedTracesAreSafe) {
  CausalTracer tracer(1u << 4);
  const uint64_t t = tracer.BeginTrace(0);
  tracer.Abandon(t);
  EXPECT_EQ(tracer.abandoned(), 1u);
  tracer.Mark(t, CausalEdge::kNetRequest, 50);  // Late stamp on a dead trace.
  tracer.EndSpan(t, 1, 60);
  tracer.Finish(t, 70);
  EXPECT_EQ(tracer.completed(), 0u);
  EXPECT_GT(tracer.stale(), 0u);
}

TEST(CausalTracerTest, RingOverwriteDropsOldestLiveTrace) {
  CausalTracer tracer(1u << 2);  // 4 slots.
  const uint64_t first = tracer.BeginTrace(0);
  for (int i = 0; i < 4; ++i) {
    tracer.BeginTrace(0);  // Wraps onto `first`'s slot.
  }
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.Mark(first, CausalEdge::kNetRequest, 10);
  EXPECT_GT(tracer.stale(), 0u);
}

// ---------------------------------------------------------------------------
// Report JSON round-trip and the regression comparator.

CriticalPathReport TwoClassReport() {
  CausalTracer tracer(1u << 4);
  for (int i = 0; i < 60; ++i) {
    const uint64_t t = tracer.BeginTrace(i * 1000);
    tracer.Mark(t, CausalEdge::kNetRequest, i * 1000 + 100);
    tracer.Mark(t, CausalEdge::kOriginQueue, i * 1000 + 300 + i);
    tracer.Mark(t, CausalEdge::kProxySend, i * 1000 + 400 + i);
    tracer.SetClass(t, i % 2 == 0 ? RequestClass::kHit : RequestClass::kStore);
    tracer.Finish(t, i * 1000 + 500 + i);
  }
  return tracer.Report();
}

TEST(CriticalPathReportTest, JsonRoundTripPreservesRows) {
  const CriticalPathReport report = TwoClassReport();
  bool ok = false;
  const CriticalPathReport parsed = ParseCriticalPathReportJson(report.ToJson(), &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(parsed.classes.size(), report.classes.size());
  for (size_t c = 0; c < report.classes.size(); ++c) {
    EXPECT_EQ(parsed.classes[c].request_class, report.classes[c].request_class);
    EXPECT_EQ(parsed.classes[c].count, report.classes[c].count);
    ASSERT_EQ(parsed.classes[c].edges.size(), report.classes[c].edges.size());
    for (size_t e = 0; e < report.classes[c].edges.size(); ++e) {
      EXPECT_EQ(parsed.classes[c].edges[e].edge, report.classes[c].edges[e].edge);
      EXPECT_EQ(parsed.classes[c].edges[e].count, report.classes[c].edges[e].count);
      EXPECT_EQ(parsed.classes[c].edges[e].p99_ns, report.classes[c].edges[e].p99_ns);
      EXPECT_NEAR(parsed.classes[c].edges[e].mean_ns, report.classes[c].edges[e].mean_ns, 0.5);
    }
  }
  bool bad_ok = true;
  ParseCriticalPathReportJson("not json", &bad_ok);
  EXPECT_FALSE(bad_ok);
}

TEST(CriticalPathGateTest, IdenticalReportsPassPerturbedOriginQueueFails) {
  const CriticalPathReport baseline = TwoClassReport();
  EXPECT_TRUE(CompareCriticalPathReports(baseline, baseline, 0.15, 10).empty());

  // Inject a +20% origin-queue perturbation: the gate must trip on it.
  CriticalPathReport perturbed = baseline;
  for (CriticalPathClassSummary& cls : perturbed.classes) {
    for (CriticalPathEdgeSummary& edge : cls.edges) {
      if (edge.edge == "origin_queue") {
        edge.mean_ns *= 1.20;
        edge.p99_ns = static_cast<uint64_t>(static_cast<double>(edge.p99_ns) * 1.20);
      }
    }
  }
  const auto regressions = CompareCriticalPathReports(baseline, perturbed, 0.15, 10);
  ASSERT_FALSE(regressions.empty());
  for (const CriticalPathRegression& r : regressions) {
    EXPECT_EQ(r.edge, "origin_queue");
    EXPECT_GT(r.ratio, 1.15);
  }
  // Improvements pass: compare the perturbed baseline against the original.
  EXPECT_TRUE(CompareCriticalPathReports(perturbed, baseline, 0.15, 10).empty());
}

TEST(CriticalPathGateTest, VanishedClassIsAViolation) {
  const CriticalPathReport baseline = TwoClassReport();
  CriticalPathReport current = baseline;
  current.classes.erase(current.classes.begin());  // Drop "hit".
  const auto regressions = CompareCriticalPathReports(baseline, current, 0.15, 10);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].request_class, "hit");
}

// ---------------------------------------------------------------------------
// End-to-end: the proxy rig with causal tracing across three hosts.

LinkConfig TestLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  link.rng_seed = 42;
  return link;
}

HostSpec TasSpec(bool causal) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  // Pin the TAS config explicitly (tas_overridden skips the harness's
  // stack_cores/ghz defaults) so the causal on/off runs differ ONLY in the
  // tracing flag — the timing-passivity test depends on it.
  spec.tas.max_fastpath_cores = 2;
  spec.tas.core_ghz = spec.ghz;
  spec.tas.trace.causal = causal;
  spec.tas_overridden = true;
  return spec;
}

struct ProxyRig {
  std::unique_ptr<Experiment> exp;
  std::unique_ptr<ProxyServer> proxy;
  std::unique_ptr<OriginServer> origin;
  std::unique_ptr<ProxyClientGen> clients;
};

ProxyRig MakeRig(ProxyServerConfig proxy_cfg, OriginServerConfig origin_cfg,
                 ProxyClientConfig client_cfg, bool causal) {
  ProxyRig rig;
  rig.exp = Experiment::Star({TasSpec(causal), TasSpec(false), TasSpec(false)}, {TestLink()});
  proxy_cfg.pool.origin_ip = rig.exp->host(1).ip();
  proxy_cfg.pool.origin_port = origin_cfg.port;
  client_cfg.proxy_ip = rig.exp->host(0).ip();
  client_cfg.proxy_port = proxy_cfg.listen_port;
  client_cfg.min_body_bytes = origin_cfg.min_body_bytes;
  client_cfg.body_spread = origin_cfg.body_spread;
  rig.proxy = std::make_unique<ProxyServer>(rig.exp->host_sim(0), rig.exp->host(0).stack(), proxy_cfg);
  rig.origin =
      std::make_unique<OriginServer>(rig.exp->host_sim(1), rig.exp->host(1).stack(), origin_cfg);
  rig.clients =
      std::make_unique<ProxyClientGen>(rig.exp->host_sim(2), rig.exp->host(2).stack(), client_cfg);
  rig.origin->Start();
  rig.proxy->Start();
  rig.clients->Start();
  return rig;
}

bool RunUntilCompleted(ProxyRig& rig, uint64_t target, TimeNs deadline) {
  while (rig.exp->sim().Now() < deadline && rig.clients->completed() < target) {
    rig.exp->sim().RunUntil(rig.exp->sim().Now() + Ms(10));
  }
  return rig.clients->completed() >= target;
}

// Mixed workload: small universe for hits, bodies straddling splice_min_body
// for store + splice, concurrency for coalescing on cold objects.
ProxyRig MixedRig(bool causal) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 1 << 20;
  proxy_cfg.splice_min_body = 1024;
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 64;
  origin_cfg.body_spread = 2048;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 8;
  client_cfg.pipeline_depth = 4;
  client_cfg.num_objects = 64;
  client_cfg.zipf_skew = 0.9;
  return MakeRig(proxy_cfg, origin_cfg, client_cfg, causal);
}

TEST(CausalE2eTest, TracesPartitionAndSpanHosts) {
  ProxyRig rig = MixedRig(/*causal=*/true);
  ASSERT_TRUE(RunUntilCompleted(rig, 500, Sec(10)));

  const CausalTracer& ct = rig.exp->host(0).tas()->tracer().causal();
  EXPECT_GE(ct.completed(), 500u);
  EXPECT_EQ(ct.critical_path_mismatches(), 0u);
  EXPECT_EQ(ct.dropped(), 0u);
  EXPECT_EQ(ct.truncated(), 0u);
  EXPECT_EQ(rig.clients->trace_mismatches(), 0u);

  const CriticalPathReport report = ct.Report();
  ASSERT_NE(report.Find("hit"), nullptr);
  ASSERT_NE(report.Find("store"), nullptr);
  ASSERT_NE(report.Find("splice"), nullptr);
  // Every class partitions: the e2e row's share column is exactly 1 summed
  // over edges (verified inside Finish; here check the report shape).
  for (const CriticalPathClassSummary& cls : report.classes) {
    ASSERT_FALSE(cls.edges.empty());
    EXPECT_EQ(cls.edges[0].edge, "e2e");
    double share_sum = 0;
    for (size_t e = 1; e < cls.edges.size(); ++e) {
      share_sum += cls.edges[e].share;
    }
    EXPECT_NEAR(share_sum, 1.0, 1e-6);
  }

  // A store-class exemplar's span tree spans all three tiers: client request
  // root, proxy job, origin fetch, origin serve — with no orphans.
  ASSERT_FALSE(ct.exemplars(RequestClass::kStore).empty());
  const TraceExemplar& ex = ct.exemplars(RequestClass::kStore)[0];
  const SpanTree tree = AssembleSpanTree(ex.spans);
  EXPECT_EQ(tree.orphans, 0u);
  ASSERT_NE(tree.root, SIZE_MAX);
  EXPECT_EQ(ex.spans[tree.root].kind, CausalSpanKind::kRequest);
  bool saw_job = false;
  bool saw_fetch = false;
  bool saw_serve = false;
  for (const CausalSpan& span : ex.spans) {
    saw_job |= span.kind == CausalSpanKind::kProxyJob;
    saw_fetch |= span.kind == CausalSpanKind::kOriginFetch;
    saw_serve |= span.kind == CausalSpanKind::kOriginServe;
    if (span.kind != CausalSpanKind::kRequest) {
      EXPECT_NE(span.parent, 0u);
    }
  }
  EXPECT_TRUE(saw_job);
  EXPECT_TRUE(saw_fetch);
  EXPECT_TRUE(saw_serve);
}

TEST(CausalE2eTest, CoalescedWaitersLinkToPrimaryFetch) {
  // Hammer a tiny cold universe so concurrent misses coalesce.
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 1 << 20;
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;  // Store path; waiters share bodies.
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 512;
  origin_cfg.body_spread = 512;
  origin_cfg.app_cycles_per_request = 20000;  // Slow origin widens the window.
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 16;
  client_cfg.pipeline_depth = 4;
  client_cfg.num_objects = 4;
  client_cfg.connect_spread = Us(50);
  ProxyRig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg, /*causal=*/true);
  ASSERT_TRUE(RunUntilCompleted(rig, 200, Sec(10)));

  ASSERT_GT(rig.proxy->coalesced_requests(), 0u);
  const CausalTracer& ct = rig.exp->host(0).tas()->tracer().causal();
  EXPECT_EQ(ct.critical_path_mismatches(), 0u);
  const CriticalPathReport report = ct.Report();
  const CriticalPathClassSummary* coalesced = report.Find("coalesced");
  ASSERT_NE(coalesced, nullptr);
  EXPECT_GT(coalesced->count, 0u);
  // The coalesce_wait edge carries the time parked on the primary fetch.
  ASSERT_NE(coalesced->Find("coalesce_wait"), nullptr);
  EXPECT_GT(coalesced->Find("coalesce_wait")->count, 0u);
  // Fan-out trees: every coalesced exemplar records the cross-trace link to
  // the primary fetch that produced its body.
  ASSERT_FALSE(ct.exemplars(RequestClass::kCoalesced).empty());
  for (const TraceExemplar& ex : ct.exemplars(RequestClass::kCoalesced)) {
    ASSERT_FALSE(ex.links.empty());
    EXPECT_NE(ex.links[0].from_trace, 0u);
    EXPECT_NE(ex.links[0].from_trace, ex.trace_id);
  }
}

// Same seed + tracing on => byte-identical reports and identical timing.
TEST(CausalE2eTest, SameSeedRerunIsByteIdentical) {
  std::string first_json;
  std::string second_json;
  uint64_t first_completed = 0;
  uint64_t second_completed = 0;
  TimeNs first_now = 0;
  TimeNs second_now = 0;
  {
    ProxyRig rig = MixedRig(/*causal=*/true);
    ASSERT_TRUE(RunUntilCompleted(rig, 400, Sec(10)));
    first_json = rig.exp->host(0).tas()->tracer().causal().Report().ToJson();
    first_completed = rig.clients->completed();
    first_now = rig.exp->sim().Now();
  }
  {
    ProxyRig rig = MixedRig(/*causal=*/true);
    ASSERT_TRUE(RunUntilCompleted(rig, 400, Sec(10)));
    second_json = rig.exp->host(0).tas()->tracer().causal().Report().ToJson();
    second_completed = rig.clients->completed();
    second_now = rig.exp->sim().Now();
  }
  EXPECT_EQ(first_json, second_json);
  EXPECT_EQ(first_completed, second_completed);
  EXPECT_EQ(first_now, second_now);
}

// Tracing off must not change behavior or timing: trace fields ride the wire
// as zeros either way, so the two runs see identical event sequences.
TEST(CausalE2eTest, TracingIsTimingPassive) {
  uint64_t on_completed = 0;
  uint64_t off_completed = 0;
  TimeNs on_now = 0;
  TimeNs off_now = 0;
  {
    ProxyRig rig = MixedRig(/*causal=*/true);
    ASSERT_TRUE(RunUntilCompleted(rig, 400, Sec(10)));
    on_completed = rig.clients->completed();
    on_now = rig.exp->sim().Now();
    EXPECT_GT(rig.exp->host(0).tas()->tracer().causal().completed(), 0u);
  }
  {
    ProxyRig rig = MixedRig(/*causal=*/false);
    ASSERT_TRUE(RunUntilCompleted(rig, 400, Sec(10)));
    off_completed = rig.clients->completed();
    off_now = rig.exp->sim().Now();
    // No tracer installed: nothing was traced, and nothing was echoed.
    EXPECT_EQ(rig.clients->trace_mismatches(), 0u);
  }
  EXPECT_EQ(on_completed, off_completed);
  EXPECT_EQ(on_now, off_now);
}

}  // namespace
}  // namespace tas
