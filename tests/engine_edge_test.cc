// Edge-case tests for the TCP engine and the stacks built on it: wire-format
// honesty (every packet round-trips through the byte encoder), zero-window
// stalls and updates, FIN-with-payload, RST teardown, window-mode TAS,
// delayed-ack behavior, dupack/window-update distinction, and PCAP output.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/net/pcap.h"
#include "src/harness/experiment.h"
#include "src/tas/slow_path.h"

namespace tas {
namespace {

LinkConfig TestLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  return link;
}

// Minimal byte-counting apps used across these tests.
class Sink : public AppHandler {
 public:
  explicit Sink(Stack* stack) : stack_(stack) {}
  void OnAccepted(ConnId conn, uint16_t) override { last_conn_ = conn; }
  void OnData(ConnId conn, size_t /*bytes*/) override {
    last_conn_ = conn;
    if (paused_) {
      return;  // Simulate a stalled application (window fills).
    }
    Drain(conn);
  }
  void Drain(ConnId conn) {
    uint8_t buf[4096];
    size_t n;
    while ((n = stack_->Recv(conn, buf, sizeof(buf))) > 0) {
      received_ += n;
    }
  }
  void OnRemoteClosed(ConnId conn) override { stack_->Close(conn); }
  void Pause() { paused_ = true; }
  void Resume(ConnId conn) {
    paused_ = false;
    Drain(conn);
  }
  Stack* stack_;
  ConnId last_conn_ = kInvalidConn;
  size_t received_ = 0;
  bool paused_ = false;
};

class Streamer : public AppHandler {
 public:
  Streamer(Stack* stack, IpAddr dst, uint16_t port, size_t total)
      : stack_(stack), dst_(dst), port_(port), total_(total) {}
  void Start() {
    stack_->SetHandler(this);
    conn_ = stack_->Connect(dst_, port_);
  }
  void OnConnected(ConnId conn, bool ok) override {
    connected_ = ok;
    if (ok) {
      Pump(conn);
    }
  }
  void OnSendSpace(ConnId conn, size_t bytes) override {
    acked_ += bytes;
    Pump(conn);
  }
  void Pump(ConnId conn) {
    uint8_t chunk[2048] = {};
    while (sent_ < total_) {
      const size_t want = std::min(sizeof(chunk), total_ - sent_);
      const size_t n = stack_->Send(conn, chunk, want);
      sent_ += n;
      if (n < want) {
        break;
      }
    }
  }
  Stack* stack_;
  IpAddr dst_;
  uint16_t port_;
  size_t total_;
  ConnId conn_ = kInvalidConn;
  size_t sent_ = 0;
  size_t acked_ = 0;
  bool connected_ = false;
};

class WireFormatTest : public ::testing::TestWithParam<StackKind> {};

// Every packet either stack emits must survive the byte-level wire encoding
// (valid checksums, parseable options) — links in validate mode assert it.
TEST_P(WireFormatTest, AllPacketsSurviveByteRoundTrip) {
  HostSpec spec;
  spec.stack = GetParam();
  LinkConfig link = TestLink();
  link.validate_wire_format = true;
  auto exp = Experiment::PointToPoint(spec, spec, link);

  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 50000);
  streamer.Start();
  exp->sim().RunUntil(Ms(200));
  EXPECT_EQ(sink.received_, 50000u);
}

INSTANTIATE_TEST_SUITE_P(Stacks, WireFormatTest,
                         ::testing::Values(StackKind::kTas, StackKind::kLinux,
                                           StackKind::kIx, StackKind::kMtcp));

TEST(ZeroWindowTest, PausedReceiverStallsThenResumes) {
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  spec.engine_overridden = true;
  spec.engine = LinuxStackConfig();
  spec.engine.tcp.rx_buffer_bytes = 8 * 1024;  // Small: fills quickly.
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());

  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  sink.Pause();
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 200000);
  streamer.Start();

  exp->sim().RunUntil(Ms(100));
  // Receiver paused: the sender must have stalled around the 8KB window.
  EXPECT_LT(streamer.acked_, 20000u);
  const size_t stalled_at = streamer.acked_;

  ASSERT_NE(sink.last_conn_, kInvalidConn);
  sink.Resume(sink.last_conn_);
  exp->sim().RunUntil(Ms(500));
  EXPECT_EQ(sink.received_, 200000u) << "window update failed to unstick sender";
  EXPECT_GT(streamer.acked_, stalled_at);
}

TEST(ZeroWindowTest, TasReceiverWindowUpdateUnsticksPeer) {
  HostSpec tas_spec;
  tas_spec.stack = StackKind::kTas;
  tas_spec.tas_overridden = true;
  tas_spec.tas.max_fastpath_cores = 2;
  tas_spec.tas.rx_buffer_bytes = 8 * 1024;
  tas_spec.tas.tx_buffer_bytes = 8 * 1024;
  HostSpec linux_spec;
  linux_spec.stack = StackKind::kLinux;
  auto exp = Experiment::PointToPoint(tas_spec, linux_spec, TestLink());

  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  sink.Pause();
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 100000);
  streamer.Start();
  exp->sim().RunUntil(Ms(100));
  EXPECT_LT(streamer.acked_, 20000u);
  ASSERT_NE(sink.last_conn_, kInvalidConn);
  sink.Resume(sink.last_conn_);
  exp->sim().RunUntil(Ms(600));
  EXPECT_EQ(sink.received_, 100000u);
}

TEST(TasWindowModeTest, WindowEnforcementTransfersIntact) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.tas_overridden = true;
  spec.tas.max_fastpath_cores = 2;
  spec.tas.cc_algorithm = CcAlgorithm::kDctcpWindow;  // Window mode (§3.2).
  LinkConfig link = TestLink();
  link.ecn_threshold_pkts = 65;
  auto exp = Experiment::PointToPoint(spec, spec, link);

  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 300000);
  streamer.Start();
  exp->sim().RunUntil(Ms(300));
  EXPECT_EQ(sink.received_, 300000u);
  // The window actually bounded flight size at some point.
  TasService* tas = exp->host(1).tas();
  bool saw_window = false;
  for (FlowId id = 0; id < 4; ++id) {
    Flow* flow = tas->GetFlow(id);
    if (flow != nullptr && flow->cc_window > 0) {
      saw_window = true;
    }
  }
  EXPECT_TRUE(saw_window);
}

TEST(TasWindowModeTest, WindowModeRecoversFromLoss) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.tas_overridden = true;
  spec.tas.max_fastpath_cores = 2;
  spec.tas.cc_algorithm = CcAlgorithm::kDctcpWindow;
  LinkConfig link = TestLink();
  link.faults.Add(BernoulliLoss(0.02));
  auto exp = Experiment::PointToPoint(spec, spec, link);
  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 60000);
  streamer.Start();
  exp->sim().RunUntil(Sec(10));
  EXPECT_EQ(sink.received_, 60000u);
}

TEST(PcapTest, WritesParseableCapture) {
  const std::string path = "/tmp/tas_test_capture.pcap";
  {
    PcapWriter pcap(path);
    ASSERT_TRUE(pcap.ok());
    auto pkt = MakeTcpPacket(MakeIp(10, 0, 0, 1), 1000, MakeIp(10, 0, 0, 2), 2000, 7, 9,
                             TcpFlags::kAck | TcpFlags::kPsh, {1, 2, 3});
    pcap.Record(Us(123), *pkt);
    pcap.Record(Us(456), *pkt);
    EXPECT_EQ(pcap.packets_written(), 2u);
  }
  // Global header magic + both records present.
  std::ifstream in(path, std::ios::binary);
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 4);
  EXPECT_EQ(magic, 0xA1B2C3D4u);
  in.seekg(0, std::ios::end);
  // 24B global header + 2 * (16B record header + 57B frame).
  EXPECT_EQ(static_cast<size_t>(in.tellg()), 24 + 2 * (16 + 57));
  std::remove(path.c_str());
}

TEST(DelayedAckTest, PureAcksAreCoalesced) {
  // One-directional stream: the receiver should emit far fewer pure ACKs
  // than data packets (2-MSS rule / delayed-ack timer).
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());
  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 500000);
  streamer.Start();
  exp->sim().RunUntil(Ms(200));
  ASSERT_EQ(sink.received_, 500000u);
  // Data packets from host1 to host0 vs ACKs host0 to host1.
  const Link* wire = exp->net()->links()[0].get();
  const uint64_t data_pkts = wire->stats(1).tx_packets;
  const uint64_t ack_pkts = wire->stats(0).tx_packets;
  EXPECT_LT(ack_pkts * 3, data_pkts * 2) << "delayed acks not coalescing";
}

TEST(TasAckTest, TasAcksEveryDataPacket) {
  // Paper §3.1: the fast path acknowledges every received data packet.
  HostSpec tas_spec;
  tas_spec.stack = StackKind::kTas;
  HostSpec peer;
  peer.stack = StackKind::kLinux;
  auto exp = Experiment::PointToPoint(tas_spec, peer, TestLink());
  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 200000);
  streamer.Start();
  exp->sim().RunUntil(Ms(200));
  ASSERT_EQ(sink.received_, 200000u);
  const TasStats& stats = exp->host(0).tas()->stats();
  EXPECT_GE(stats.fastpath_acks_sent + 5, stats.fastpath_rx_packets);
}

TEST(RstTest, AbortTearsDownBothEnds) {
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());
  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 1 << 20);
  streamer.Start();
  exp->sim().RunUntil(Ms(5));
  ASSERT_TRUE(streamer.connected_);
  // Abort from the sender side mid-transfer.
  exp->host(1).engine()->connection(streamer.conn_)->Abort();
  exp->sim().RunUntil(Ms(50));
  EXPECT_EQ(exp->host(1).engine()->num_connections(), 0u);
  EXPECT_EQ(exp->host(0).engine()->num_connections(), 0u);
}

TEST(MtuTest, OversizedWritesAreSegmented) {
  // A single 100KB Send must arrive as MSS-sized packets, never oversized.
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  LinkConfig link = TestLink();
  auto exp = Experiment::PointToPoint(spec, spec, link);
  Sink sink(exp->host(0).stack());
  exp->host(0).stack()->SetHandler(&sink);
  exp->host(0).stack()->Listen(5000);
  Streamer streamer(exp->host(1).stack(), exp->host(0).ip(), 5000, 100000);
  streamer.Start();
  exp->sim().RunUntil(Ms(100));
  ASSERT_EQ(sink.received_, 100000u);
  const Link* wire = exp->net()->links()[0].get();
  // 100000 / 1448 = 70 packets minimum; anything much larger means an
  // oversized frame slipped through.
  EXPECT_GE(wire->stats(1).tx_packets, 70u);
  const double avg_bytes = static_cast<double>(wire->stats(1).tx_bytes) /
                           static_cast<double>(wire->stats(1).tx_packets);
  EXPECT_LE(avg_bytes, 1448 + 66 + 12);  // MSS + headers + options.
}

}  // namespace
}  // namespace tas
