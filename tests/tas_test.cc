// Integration tests for TAS itself: slow-path connection control, fast-path
// data transfer, out-of-order handling, loss recovery, interoperability with
// the Linux baseline stack (paper Table 4), and workload proportionality.
#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/tas/slow_path.h"

namespace tas {
namespace {

LinkConfig TestLink(double drop_rate = 0.0) {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  if (drop_rate > 0) {
    link.faults.Add(BernoulliLoss(drop_rate));
  }
  return link;
}

class RecordingServer : public AppHandler {
 public:
  RecordingServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }
  void OnAccepted(ConnId conn, uint16_t) override { accepted_.push_back(conn); }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    const size_t n = stack_->Recv(conn, buf.data(), bytes);
    per_conn_[conn].insert(per_conn_[conn].end(), buf.begin(),
                           buf.begin() + static_cast<long>(n));
    received_ += n;
  }
  void OnRemoteClosed(ConnId conn) override {
    remote_closed_++;
    stack_->Close(conn);
  }
  void OnClosed(ConnId) override { fully_closed_++; }

  Stack* stack_;
  uint16_t port_;
  std::vector<ConnId> accepted_;
  std::map<ConnId, std::vector<uint8_t>> per_conn_;
  size_t received_ = 0;
  int remote_closed_ = 0;
  int fully_closed_ = 0;
};

class PatternClient : public AppHandler {
 public:
  PatternClient(Stack* stack, IpAddr server, uint16_t port, size_t total,
                size_t num_conns = 1)
      : stack_(stack), server_(server), port_(port), total_(total), num_conns_(num_conns) {}
  void Start() {
    stack_->SetHandler(this);
    for (size_t i = 0; i < num_conns_; ++i) {
      ConnId id = stack_->Connect(server_, port_);
      progress_[id] = Progress{};
    }
  }
  void OnConnected(ConnId conn, bool success) override {
    if (!success) {
      ++failures_;
      return;
    }
    ++connected_;
    Pump(conn);
  }
  void OnSendSpace(ConnId conn, size_t bytes) override {
    auto it = progress_.find(conn);
    if (it == progress_.end()) {
      return;
    }
    it->second.acked += bytes;
    Pump(conn);
    if (it->second.sent >= total_ && it->second.acked >= total_ && !it->second.closed) {
      it->second.closed = true;
      stack_->Close(conn);
    }
  }
  void OnClosed(ConnId) override { ++fully_closed_; }

  void Pump(ConnId conn) {
    Progress& p = progress_[conn];
    while (p.sent < total_) {
      uint8_t chunk[997];
      const size_t want = std::min(sizeof(chunk), total_ - p.sent);
      for (size_t i = 0; i < want; ++i) {
        chunk[i] = static_cast<uint8_t>((p.sent + i) % 251);
      }
      const size_t n = stack_->Send(conn, chunk, want);
      p.sent += n;
      if (n < want) {
        break;
      }
    }
  }

  struct Progress {
    size_t sent = 0;
    size_t acked = 0;
    bool closed = false;
  };
  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  size_t total_;
  size_t num_conns_;
  std::map<ConnId, Progress> progress_;
  int connected_ = 0;
  int failures_ = 0;
  int fully_closed_ = 0;
};

void ExpectPattern(const std::vector<uint8_t>& data, size_t total) {
  ASSERT_EQ(data.size(), total);
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(data[i], static_cast<uint8_t>(i % 251)) << "at offset " << i;
  }
}

struct StackPair {
  StackKind server;
  StackKind client;
};

class TransferMatrixTest : public ::testing::TestWithParam<StackPair> {};

// The Table 4 compatibility property: every combination of TAS and Linux
// endpoints (and TAS LL) moves an intact byte stream and tears down cleanly.
TEST_P(TransferMatrixTest, IntactTransfer) {
  HostSpec server_spec;
  server_spec.stack = GetParam().server;
  HostSpec client_spec;
  client_spec.stack = GetParam().client;
  auto exp = Experiment::PointToPoint(server_spec, client_spec, TestLink());

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 150000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(5));

  EXPECT_EQ(client.connected_, 1);
  ASSERT_EQ(server.accepted_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
  EXPECT_EQ(server.remote_closed_, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TransferMatrixTest,
    ::testing::Values(StackPair{StackKind::kTas, StackKind::kTas},
                      StackPair{StackKind::kTas, StackKind::kLinux},
                      StackPair{StackKind::kLinux, StackKind::kTas},
                      StackPair{StackKind::kTasLowLevel, StackKind::kTasLowLevel},
                      StackPair{StackKind::kTas, StackKind::kIx},
                      StackPair{StackKind::kIx, StackKind::kTas}));

class TasLossTest : public ::testing::TestWithParam<int> {};

// TAS's simplified recovery (one OOO interval + dupack fast recovery +
// slow-path timeouts) must still deliver the stream intact under loss.
TEST_P(TasLossTest, RecoversUnderRandomLoss) {
  const double drop_rate = GetParam() / 100.0;
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink(drop_rate));

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 80000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TasLossTest, ::testing::Values(1, 2, 5));

TEST(TasLossTest, GoBackNModeAlsoRecovers) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.tas_overridden = true;
  spec.tas.ooo_mode = OooMode::kGoBackN;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink(0.02));

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 50000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ASSERT_EQ(server.per_conn_.size(), 1u);
  ExpectPattern(server.per_conn_.begin()->second, kTotal);
}

TEST(TasTest, ManyConnectionsSpreadAcrossCoresAndTransfer) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  spec.stack_cores = 4;
  spec.app_cores = 2;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kPerConn = 20000;
  constexpr size_t kConns = 24;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kPerConn, kConns);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(10));

  EXPECT_EQ(client.connected_, static_cast<int>(kConns));
  ASSERT_EQ(server.per_conn_.size(), kConns);
  for (const auto& [conn, data] : server.per_conn_) {
    ExpectPattern(data, kPerConn);
  }
  // Work should have landed on more than one fast-path core.
  TasService* tas = exp->host(0).tas();
  int cores_used = 0;
  for (int i = 0; i < tas->max_cores(); ++i) {
    if (tas->fastpath_cpu(i)->total_cycles() > 0) {
      ++cores_used;
    }
  }
  EXPECT_GT(cores_used, 1);
}

TEST(TasTest, ConnectToClosedPortFails) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());

  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 4444, 100);
  client.Start();
  exp->sim().RunUntil(Sec(10));
  EXPECT_EQ(client.connected_, 0);
  EXPECT_EQ(client.failures_, 1);
}

TEST(TasTest, FlowStateSizeMatchesPaper) {
  EXPECT_EQ(sizeof(FlowState), 103u);  // Paper: 102 B (4-bit dupack packed).
}

TEST(TasTest, StatsAccounted) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());
  RecordingServer server(exp->host(0).stack(), 7000);
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 100000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(5));

  const TasStats& server_stats = exp->host(0).tas()->stats();
  EXPECT_GT(server_stats.fastpath_rx_packets, 50u);
  EXPECT_GT(server_stats.fastpath_acks_sent, 50u);
  EXPECT_GT(server_stats.connections_established, 0u);
  EXPECT_EQ(server_stats.rx_buffer_drops, 0u);
  const TasStats& client_stats = exp->host(1).tas()->stats();
  EXPECT_GT(client_stats.fastpath_tx_packets, 50u);
}

TEST(TasTest, SlowPathHandlesExceptionsOnly) {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());
  RecordingServer server(exp->host(0).stack(), 7000);
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 200000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(5));

  const TasStats& stats = exp->host(0).tas()->stats();
  // The slow path saw only the handshake/teardown, not the data packets.
  EXPECT_LT(stats.slowpath_packets, 10u);
  EXPECT_GT(stats.fastpath_rx_packets, 100u);
}

}  // namespace
}  // namespace tas
