// Tests for the congestion-control algorithms: the TAS rate-based DCTCP
// control law (paper §3.2), window DCTCP, NewReno, TIMELY, and the RTT
// estimator / RTO machinery.
#include <gtest/gtest.h>

#include "src/cc/dctcp_rate.h"
#include "src/cc/dctcp_window.h"
#include "src/cc/newreno.h"
#include "src/cc/timely.h"
#include "src/tcp/rtt.h"

namespace tas {
namespace {

CcFeedback CleanAck(uint64_t bytes, double tx_bps = 0, bool app_limited = false) {
  CcFeedback f;
  f.acked_bytes = bytes;
  f.rtt = Us(50);
  f.actual_tx_bps = tx_bps;
  f.app_limited = app_limited;
  return f;
}

TEST(DctcpRateTest, SlowStartDoublesUntilCongestion) {
  DctcpRateConfig config;
  config.initial_bps = 10e6;
  DctcpRateCc cc(config);
  EXPECT_TRUE(cc.in_slow_start());
  double rate = cc.Update(CleanAck(10000, 20e9));
  EXPECT_DOUBLE_EQ(rate, 20e6);
  rate = cc.Update(CleanAck(10000, 20e9));
  EXPECT_DOUBLE_EQ(rate, 40e6);

  CcFeedback congested = CleanAck(10000, 20e9);
  congested.ecn_bytes = 5000;
  rate = cc.Update(congested);
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_LT(rate, 40e6);
}

TEST(DctcpRateTest, DecreaseProportionalToMarkedFraction) {
  DctcpRateConfig config;
  config.initial_bps = 1e9;
  DctcpRateCc cc(config);
  // Exit slow start with a fully marked interval.
  CcFeedback all_marked = CleanAck(100000, 100e9);
  all_marked.ecn_bytes = 100000;
  cc.Update(all_marked);
  const double alpha_after_one = cc.alpha();
  EXPECT_NEAR(alpha_after_one, 1.0 / 16.0, 1e-9);  // g * F with F=1.

  // Now a half-marked interval: decrease by alpha/2 where alpha grows.
  const double before = cc.rate_bps();
  CcFeedback half = CleanAck(100000, 100e9);
  half.ecn_bytes = 50000;
  const double after = cc.Update(half);
  const double expected_alpha = (1 - 1.0 / 16) * alpha_after_one + (1.0 / 16) * 0.5;
  EXPECT_NEAR(cc.alpha(), expected_alpha, 1e-9);
  EXPECT_NEAR(after, before * (1 - expected_alpha / 2), 1.0);
}

TEST(DctcpRateTest, AdditiveIncreaseWithoutCongestion) {
  DctcpRateConfig config;
  config.initial_bps = 1e9;
  config.additive_step_bps = 10e6;  // Paper default.
  DctcpRateCc cc(config);
  CcFeedback marked = CleanAck(100000, 100e9);
  marked.ecn_bytes = 1;
  cc.Update(marked);  // Exit slow start.
  const double base = cc.rate_bps();
  const double after = cc.Update(CleanAck(100000, 100e9));
  EXPECT_NEAR(after, base + 10e6, 1.0);
}

TEST(DctcpRateTest, RateCappedAtActualSendRatePlus20Percent) {
  DctcpRateConfig config;
  config.initial_bps = 10e9;
  DctcpRateCc cc(config);
  // Exit slow start first (the clamp is inactive during slow start: there
  // the rate itself is the limiter).
  CcFeedback marked = CleanAck(100000, 10e9);
  marked.ecn_bytes = 1;
  cc.Update(marked);
  // App-limited flow actually sending 1 Gbps: rate must be pulled down to
  // 1.2x the measured rate (above the 100 Mbps cap floor).
  const double after = cc.Update(CleanAck(100000, 1e9, /*app_limited=*/true));
  EXPECT_LE(after, 1.2e9 + 10e6 + 1);
  // A backlogged flow is never clamped: quantized per-interval ack counts
  // must not pin its rate.
  DctcpRateCc backlogged(config);
  backlogged.Update(marked);
  const double base = backlogged.rate_bps();
  EXPECT_GE(backlogged.Update(CleanAck(100000, 1e9, /*app_limited=*/false)), base);
}

TEST(DctcpRateTest, AppLimitedClampNeverBelowFloor) {
  DctcpRateConfig config;
  config.initial_bps = 10e9;
  DctcpRateCc cc(config);
  CcFeedback marked = CleanAck(100000, 10e9);
  marked.ecn_bytes = 1;
  cc.Update(marked);
  // Nearly idle request/response flow: the clamp stops at the floor so the
  // next response still bursts promptly.
  for (int i = 0; i < 5; ++i) {
    cc.Update(CleanAck(100, 1e6, /*app_limited=*/true));
  }
  EXPECT_GE(cc.rate_bps(), config.rate_cap_floor_bps);
}

TEST(DctcpRateTest, RetransmitHalvesRate) {
  DctcpRateConfig config;
  config.initial_bps = 1e9;
  DctcpRateCc cc(config);
  CcFeedback marked = CleanAck(100000, 100e9);
  marked.ecn_bytes = 1;
  cc.Update(marked);  // Exit slow start.
  const double base = cc.rate_bps();
  CcFeedback lost = CleanAck(100000, 100e9);
  lost.retransmits = 1;
  const double after = cc.Update(lost);
  EXPECT_NEAR(after, base / 2, 1.0);
}

TEST(DctcpRateTest, RateNeverBelowFloor) {
  DctcpRateConfig config;
  config.initial_bps = 2e6;
  config.min_bps = 1e6;
  DctcpRateCc cc(config);
  for (int i = 0; i < 50; ++i) {
    CcFeedback f = CleanAck(1000, 1e6);
    f.retransmits = 1;
    cc.Update(f);
  }
  EXPECT_GE(cc.rate_bps(), 1e6);
}

TEST(DctcpWindowTest, SlowStartGrowsByAckedBytes) {
  WindowCcConfig config;
  DctcpWindowCc cc(config);
  const uint64_t initial = cc.cwnd();
  cc.OnAck(1448, false, Us(50));
  EXPECT_EQ(cc.cwnd(), initial + 1448);
}

TEST(DctcpWindowTest, EcnReducesProportionally) {
  WindowCcConfig config;
  DctcpWindowCc cc(config);
  // Drive a full observation window fully marked.
  const uint64_t start = cc.cwnd();
  uint64_t acked = 0;
  while (acked < start) {
    cc.OnAck(1448, true, Us(50));
    acked += 1448;
  }
  EXPECT_LT(cc.cwnd(), start + acked);  // Reduced versus pure slow start.
  EXPECT_GT(cc.alpha(), 0.0);
}

TEST(DctcpWindowTest, TimeoutCollapsesToMinimum) {
  WindowCcConfig config;
  DctcpWindowCc cc(config);
  for (int i = 0; i < 20; ++i) {
    cc.OnAck(1448, false, Us(50));
  }
  cc.OnTimeout();
  EXPECT_EQ(cc.cwnd(), config.mss * config.min_cwnd_segments);
}

TEST(NewRenoTest, FastRetransmitHalves) {
  WindowCcConfig config;
  NewRenoCc cc(config);
  for (int i = 0; i < 100; ++i) {
    cc.OnAck(1448, false, Us(50));
  }
  const uint64_t before = cc.cwnd();
  cc.OnFastRetransmit();
  EXPECT_NEAR(static_cast<double>(cc.cwnd()), static_cast<double>(before) / 2,
              static_cast<double>(config.mss));
}

TEST(NewRenoTest, CongestionAvoidanceLinear) {
  WindowCcConfig config;
  NewRenoCc cc(config);
  cc.OnFastRetransmit();  // Set ssthresh = cwnd/2 and leave slow start.
  const uint64_t base = cc.cwnd();
  // One full window of acks should add about one MSS.
  uint64_t acked = 0;
  while (acked < base) {
    cc.OnAck(1448, false, Us(50));
    acked += 1448;
  }
  EXPECT_NEAR(static_cast<double>(cc.cwnd()), static_cast<double>(base + config.mss),
              static_cast<double>(config.mss));
}

TEST(NewRenoTest, IgnoresEcn) {
  WindowCcConfig config;
  NewRenoCc cc(config);
  const uint64_t before = cc.cwnd();
  cc.OnAck(1448, true, Us(50));  // ECE set: NewReno does not react.
  EXPECT_GT(cc.cwnd(), before);
}

TEST(TimelyTest, SlowStartThenGradientControl) {
  TimelyConfig config;
  config.initial_bps = 10e6;
  TimelyCc cc(config);
  CcFeedback f = CleanAck(10000, 100e9);
  f.rtt = Us(40);  // Below t_high: keep doubling.
  cc.Update(f);
  EXPECT_DOUBLE_EQ(cc.rate_bps(), 20e6);
  EXPECT_TRUE(cc.in_slow_start());

  f.rtt = Us(600);  // Above t_high: exit slow start.
  cc.Update(f);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(TimelyTest, HighRttDecreases) {
  TimelyConfig config;
  config.initial_bps = 1e9;
  TimelyCc cc(config);
  CcFeedback f = CleanAck(10000, 100e9);
  f.rtt = Us(600);
  cc.Update(f);  // Exits slow start.
  const double base = cc.rate_bps();
  f.rtt = Us(800);
  const double after = cc.Update(f);
  EXPECT_LT(after, base);
}

TEST(TimelyTest, LowRttIncreases) {
  TimelyConfig config;
  config.initial_bps = 1e9;
  config.additive_step_bps = 10e6;
  TimelyCc cc(config);
  CcFeedback f = CleanAck(10000, 100e9);
  f.rtt = Us(600);
  cc.Update(f);  // Exit slow start.
  const double base = cc.rate_bps();
  f.rtt = Us(30);  // Below t_low.
  const double after = cc.Update(f);
  EXPECT_NEAR(after, base + 10e6, 1.0);
}

TEST(RttEstimatorTest, FirstSampleInitializes) {
  RttEstimator est;
  est.AddSample(Us(100));
  EXPECT_EQ(est.srtt(), Us(100));
  EXPECT_EQ(est.rttvar(), Us(50));
}

TEST(RttEstimatorTest, ConvergesToStableRtt) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) {
    est.AddSample(Us(200));
  }
  EXPECT_NEAR(static_cast<double>(est.srtt()), static_cast<double>(Us(200)),
              static_cast<double>(Us(2)));
  // RTO approaches srtt + 4*rttvar, clamped at min_rto = 1ms.
  EXPECT_GE(est.Rto(), Ms(1));
}

TEST(RttEstimatorTest, BackoffDoublesRto) {
  RttEstimator est(Us(100), Sec(60));
  for (int i = 0; i < 20; ++i) {
    est.AddSample(Ms(2));
  }
  const TimeNs base = est.Rto();
  est.Backoff();
  EXPECT_EQ(est.Rto(), base * 2);
  est.Backoff();
  EXPECT_EQ(est.Rto(), base * 4);
  est.ResetBackoff();
  EXPECT_EQ(est.Rto(), base);
}

TEST(RttEstimatorTest, RtoClampedToMax) {
  RttEstimator est(Ms(1), Ms(100));
  est.AddSample(Ms(50));
  for (int i = 0; i < 10; ++i) {
    est.Backoff();
  }
  EXPECT_EQ(est.Rto(), Ms(100));
}

}  // namespace
}  // namespace tas
