// Tests for the flat open-addressing flow table and the generation-checked
// flow slab (src/tas/flow_table): insert/erase/rehash churn with thousands of
// flows, stale-id rejection, tombstone reuse, and steady-state stats.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/tas/flow_table.h"
#include "src/util/rng.h"

namespace tas {
namespace {

FlowKey KeyOf(uint32_t i) {
  FlowKey key;
  key.local_port = static_cast<uint16_t>(1000 + (i % 40000));
  key.peer_ip = 0x0A000000u + (i / 40000) + (i << 7);
  key.peer_port = static_cast<uint16_t>(2000 + (i % 60000));
  return key;
}

TEST(FlowTableTest, InsertFindErase) {
  FlowTable table(16);
  const FlowKey a = KeyOf(1);
  const FlowKey b = KeyOf(2);
  EXPECT_EQ(table.Find(a), kInvalidFlow);
  table.Insert(a, MakeFlowId(7, 3));
  table.Insert(b, MakeFlowId(9, 0));
  EXPECT_EQ(table.Find(a), MakeFlowId(7, 3));
  EXPECT_EQ(table.Find(b), MakeFlowId(9, 0));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.Erase(a));
  EXPECT_FALSE(table.Erase(a));  // Already gone.
  EXPECT_EQ(table.Find(a), kInvalidFlow);
  EXPECT_EQ(table.Find(b), MakeFlowId(9, 0));  // Probe skips the tombstone.
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.tombstones(), 1u);
}

TEST(FlowTableTest, TombstoneReusedOnReinsert) {
  FlowTable table(16);
  const FlowKey key = KeyOf(42);
  table.Insert(key, MakeFlowId(1, 0));
  ASSERT_TRUE(table.Erase(key));
  EXPECT_EQ(table.tombstones(), 1u);
  table.Insert(key, MakeFlowId(1, 1));
  EXPECT_EQ(table.tombstones(), 0u);  // Slot recycled, not a fresh one.
  EXPECT_GE(table.stats().tombstones_reused, 1u);
  EXPECT_EQ(table.Find(key), MakeFlowId(1, 1));
}

TEST(FlowTableTest, ChurnThousandsOfFlowsMatchesReferenceMap) {
  // Mirror every operation into unordered_map and compare continuously:
  // rehashes and tombstone recycling must never lose or corrupt a mapping.
  FlowTable table;
  std::unordered_map<FlowKey, FlowId, FlowKeyHash> reference;
  std::vector<FlowKey> live_keys;
  Rng rng(0xF10F1);
  uint32_t next = 0;
  for (int step = 0; step < 30000; ++step) {
    const bool insert = live_keys.empty() || (rng.Next() % 3) != 0;
    if (insert) {
      const FlowKey key = KeyOf(next);
      const FlowId id = MakeFlowId(next & kFlowSlotMask, next & kFlowGenMask);
      ++next;
      if (reference.count(key) != 0) {
        continue;  // KeyOf collisions across the wrap would double-insert.
      }
      table.Insert(key, id);
      reference[key] = id;
      live_keys.push_back(key);
    } else {
      const size_t victim = rng.Next() % live_keys.size();
      const FlowKey key = live_keys[victim];
      EXPECT_TRUE(table.Erase(key));
      reference.erase(key);
      live_keys[victim] = live_keys.back();
      live_keys.pop_back();
    }
    if (step % 997 == 0) {
      for (const auto& [key, id] : reference) {
        ASSERT_EQ(table.Find(key), id);
      }
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  EXPECT_GT(table.stats().rehashes, 0u);
  for (const auto& [key, id] : reference) {
    ASSERT_EQ(table.Find(key), id);
  }
  // Deleted keys must actually be gone.
  for (uint32_t i = 0; i < next; ++i) {
    const FlowKey key = KeyOf(i);
    const auto it = reference.find(key);
    ASSERT_EQ(table.Find(key), it == reference.end() ? kInvalidFlow : it->second);
  }
}

TEST(FlowTableTest, CapacityIsPowerOfTwoAndBoundsLoadFactor) {
  FlowTable table(8);
  for (uint32_t i = 0; i < 5000; ++i) {
    table.Insert(KeyOf(i), MakeFlowId(i & kFlowSlotMask, 0));
    ASSERT_EQ(table.capacity() & (table.capacity() - 1), 0u);
    ASSERT_LE(table.LoadFactor(), 7.0 / 8.0 + 1e-9);
  }
  for (uint32_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(table.Find(KeyOf(i)), MakeFlowId(i & kFlowSlotMask, 0));
  }
  EXPECT_GT(table.stats().lookups, 0u);
  EXPECT_GT(table.AvgProbeLength(), 0.0);
  EXPECT_GE(table.stats().max_probe, 1u);
}

TEST(FlowTableTest, MillionFlowChurnWithStaleIdRejection) {
  // The ROADMAP capacity target exercised directly: hold over a million live
  // keys through growth rehashes, then churn erase+reinsert; meanwhile a
  // slab churns slots so freed FlowIds must go stale (generation bump).
  FlowTable table;
  const size_t kFlows = 1'050'000;
  std::vector<uint64_t> keys(kFlows);
  for (uint64_t i = 0; i < kFlows; ++i) {
    keys[i] = i;
    table.Insert(KeyOf(static_cast<uint32_t>(i)),
                 MakeFlowId(static_cast<uint32_t>(i) & kFlowSlotMask,
                            static_cast<uint32_t>(i >> kFlowSlotBits)));
  }
  // KeyOf is injective over this range (the i<<7 term dominates), so the
  // table must report exactly one entry per insert.
  ASSERT_EQ(table.size(), kFlows);

  Rng rng(0xC0DE);
  uint64_t next = kFlows;
  for (size_t op = 0; op < 200'000; ++op) {
    const size_t victim = static_cast<size_t>(rng.Next() % kFlows);
    ASSERT_TRUE(table.Erase(KeyOf(static_cast<uint32_t>(keys[victim]))));
    keys[victim] = next++;
    const uint32_t k = static_cast<uint32_t>(keys[victim]);
    table.Insert(KeyOf(k), MakeFlowId(k & kFlowSlotMask, k >> kFlowSlotBits));
    if ((op & 0x3FF) == 0) {
      const size_t probe = static_cast<size_t>(rng.Next() % kFlows);
      const uint32_t pk = static_cast<uint32_t>(keys[probe]);
      ASSERT_EQ(table.Find(KeyOf(pk)), MakeFlowId(pk & kFlowSlotMask, pk >> kFlowSlotBits));
    }
  }
  EXPECT_EQ(table.size(), kFlows);
  EXPECT_EQ(table.stats().forced_finishes, 0u);
  EXPECT_LE(table.stats().max_reloc_slots, FlowTable::kRehashStrideSlots);

  // Slab side: every Free must stale the outstanding id before the slot is
  // recycled, across many generations per slot.
  FlowSlab slab;
  std::vector<FlowId> live;
  for (int i = 0; i < 4096; ++i) {
    live.push_back(slab.Allocate());
  }
  for (size_t op = 0; op < 100'000; ++op) {
    const size_t victim = static_cast<size_t>(rng.Next() % live.size());
    const FlowId old_id = live[victim];
    slab.Free(old_id);
    ASSERT_EQ(slab.Get(old_id), nullptr) << "freed id resolved after recycle";
    live[victim] = slab.Allocate();
    ASSERT_NE(slab.Get(live[victim]), nullptr);
  }
  EXPECT_EQ(slab.live(), 4096u);
}

TEST(FlowTableTest, TombstoneDriftTriggersSameCapacityRebuild) {
  // Fill to occupancy 3584 (live + tombstones), then erase most entries:
  // occupancy is unchanged by erases, so with live far below the drift bound
  // (7/16 of capacity) the very next insert's occupancy check must trip as a
  // SAME-capacity rebuild, not growth. This is arithmetic, not placement
  // luck: Insert checks (live + tombstones + 1) * 8 > slots * 7 before it
  // probes, so the trigger fires no matter where the new key hashes.
  FlowTable table(4096);
  uint32_t next = 0;
  std::vector<uint32_t> live;
  for (size_t i = 0; i < 3584; ++i) {  // One under the growth trigger.
    live.push_back(next);
    table.Insert(KeyOf(next), MakeFlowId(next, 0));
    ++next;
  }
  ASSERT_EQ(table.stats().rehashes, 0u);
  size_t head = 0;
  while (live.size() - head > 784) {
    ASSERT_TRUE(table.Erase(KeyOf(live[head++])));
  }
  ASSERT_EQ(table.tombstones(), 2800u);
  const size_t cap_before = table.capacity();

  live.push_back(next);
  table.Insert(KeyOf(next), MakeFlowId(next, 0));
  ++next;
  EXPECT_EQ(table.stats().drift_rebuilds, 1u) << "drift rebuild never triggered";
  EXPECT_EQ(table.capacity(), cap_before) << "drift rebuild must not grow";
  EXPECT_TRUE(table.rehash_in_progress()) << "drift rebuild must drain incrementally";

  // Churn through the drain (Find is const and does not step the rehash;
  // mutating ops do, in bounded strides). Live size stays constant.
  size_t guard = 0;
  while (table.rehash_in_progress() && guard++ < 1000) {
    live.push_back(next);
    table.Insert(KeyOf(next), MakeFlowId(next, 0));
    ++next;
    ASSERT_TRUE(table.Erase(KeyOf(live[head++])));
  }
  ASSERT_FALSE(table.rehash_in_progress());
  EXPECT_EQ(table.capacity(), cap_before);
  EXPECT_EQ(table.stats().forced_finishes, 0u);
  EXPECT_LE(table.stats().max_reloc_slots, 64u);
  // The rebuild collapsed the tombstone population and kept every live key.
  EXPECT_LT(table.tombstones(), 2800u / 2);
  for (size_t i = head; i < live.size(); ++i) {
    ASSERT_EQ(table.Find(KeyOf(live[i])), MakeFlowId(live[i], 0));
  }
}

TEST(FlowTableTest, FindDuringIncrementalRehashSeesBothTables) {
  // Push a 1024-slot table over the growth bound, then operate while the
  // rehash drains: lookups must consult both tables, erases of not-yet-
  // migrated keys must land in the old table, and the drain must complete
  // through bounded per-op strides only.
  FlowTable table(1024);
  uint32_t next = 0;
  for (size_t i = 0; i < 900; ++i) {  // Growth trigger at occupancy 896.
    table.Insert(KeyOf(next), MakeFlowId(next, 0));
    ++next;
  }
  ASSERT_TRUE(table.rehash_in_progress());
  ASSERT_GT(table.rehash_remaining_slots(), 0u);

  // All keys resolve mid-drain (some migrated, some still in the old table).
  for (uint32_t i = 0; i < next; ++i) {
    ASSERT_EQ(table.Find(KeyOf(i)), MakeFlowId(i, 0));
  }
  // Erase keys while draining: wherever each one currently lives, it must
  // disappear from lookups and never resurface after the drain completes.
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Erase(KeyOf(i)));
    ASSERT_EQ(table.Find(KeyOf(i)), kInvalidFlow);
  }
  // Keep mutating until the drain retires the old table.
  size_t guard = 0;
  while (table.rehash_in_progress() && guard++ < 10'000) {
    table.Insert(KeyOf(next), MakeFlowId(next, 0));
    ++next;
  }
  ASSERT_FALSE(table.rehash_in_progress());
  for (uint32_t i = 0; i < next; ++i) {
    ASSERT_EQ(table.Find(KeyOf(i)), i < 100 ? kInvalidFlow : MakeFlowId(i, 0));
  }
  EXPECT_GT(table.stats().relocated, 0u);
  EXPECT_EQ(table.stats().forced_finishes, 0u);
  EXPECT_LE(table.stats().max_reloc_slots, FlowTable::kRehashStrideSlots);
}

TEST(FlowSlabTest, AllocateResolvesAndFreeStalesId) {
  FlowSlab slab;
  const FlowId a = slab.Allocate();
  const FlowId b = slab.Allocate();
  EXPECT_NE(a, b);
  EXPECT_NE(a, kInvalidFlow);
  Flow* flow = slab.Get(a);
  ASSERT_NE(flow, nullptr);
  flow->mss = 9000;
  EXPECT_EQ(slab.Get(a), flow);  // Stable address.
  EXPECT_EQ(slab.live(), 2u);

  slab.Free(a);
  EXPECT_EQ(slab.Get(a), nullptr);  // Stale generation rejected.
  EXPECT_EQ(slab.live(), 1u);

  // The freed slot is recycled under a new generation; the old id still
  // resolves to nullptr while the new one resolves to a Reset() flow.
  const FlowId c = slab.Allocate();
  EXPECT_EQ(FlowSlotOf(c), FlowSlotOf(a));
  EXPECT_NE(FlowGenOf(c), FlowGenOf(a));
  EXPECT_EQ(slab.Get(a), nullptr);
  Flow* recycled = slab.Get(c);
  ASSERT_NE(recycled, nullptr);
  EXPECT_EQ(recycled->mss, 1448);  // Reset, not leftover state.
}

TEST(FlowSlabTest, OutOfRangeAndInvalidIdsRejected) {
  FlowSlab slab;
  EXPECT_EQ(slab.Get(kInvalidFlow), nullptr);
  EXPECT_EQ(slab.Get(MakeFlowId(123456, 0)), nullptr);
  const FlowId id = slab.Allocate();
  EXPECT_EQ(slab.Get(MakeFlowId(FlowSlotOf(id), FlowGenOf(id) + 1)), nullptr);
}

TEST(FlowSlabTest, ChurnKeepsAddressesStableAcrossGrowth) {
  FlowSlab slab;
  std::vector<FlowId> ids;
  std::vector<Flow*> addrs;
  // Grow across several chunks, then verify early addresses never moved.
  for (uint32_t i = 0; i < FlowSlab::kChunkSlots * 3 + 17; ++i) {
    ids.push_back(slab.Allocate());
    addrs.push_back(slab.Get(ids.back()));
    ASSERT_NE(addrs.back(), nullptr);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(slab.Get(ids[i]), addrs[i]);
  }
  EXPECT_EQ(slab.capacity_slots() % FlowSlab::kChunkSlots, 0u);

  // Free every other flow and re-allocate: recycled ids reuse slots (no
  // growth) and stale ids stay dead.
  const size_t before = slab.capacity_slots();
  std::vector<FlowId> freed;
  for (size_t i = 0; i < ids.size(); i += 2) {
    slab.Free(ids[i]);
    freed.push_back(ids[i]);
  }
  for (size_t i = 0; i < freed.size(); ++i) {
    const FlowId id = slab.Allocate();
    ASSERT_NE(slab.Get(id), nullptr);
  }
  EXPECT_EQ(slab.capacity_slots(), before);
  for (const FlowId id : freed) {
    ASSERT_EQ(slab.Get(id), nullptr);
  }
}

}  // namespace
}  // namespace tas
