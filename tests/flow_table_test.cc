// Tests for the flat open-addressing flow table and the generation-checked
// flow slab (src/tas/flow_table): insert/erase/rehash churn with thousands of
// flows, stale-id rejection, tombstone reuse, and steady-state stats.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "src/tas/flow_table.h"
#include "src/util/rng.h"

namespace tas {
namespace {

FlowKey KeyOf(uint32_t i) {
  FlowKey key;
  key.local_port = static_cast<uint16_t>(1000 + (i % 40000));
  key.peer_ip = 0x0A000000u + (i / 40000) + (i << 7);
  key.peer_port = static_cast<uint16_t>(2000 + (i % 60000));
  return key;
}

TEST(FlowTableTest, InsertFindErase) {
  FlowTable table(16);
  const FlowKey a = KeyOf(1);
  const FlowKey b = KeyOf(2);
  EXPECT_EQ(table.Find(a), kInvalidFlow);
  table.Insert(a, MakeFlowId(7, 3));
  table.Insert(b, MakeFlowId(9, 0));
  EXPECT_EQ(table.Find(a), MakeFlowId(7, 3));
  EXPECT_EQ(table.Find(b), MakeFlowId(9, 0));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_TRUE(table.Erase(a));
  EXPECT_FALSE(table.Erase(a));  // Already gone.
  EXPECT_EQ(table.Find(a), kInvalidFlow);
  EXPECT_EQ(table.Find(b), MakeFlowId(9, 0));  // Probe skips the tombstone.
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.tombstones(), 1u);
}

TEST(FlowTableTest, TombstoneReusedOnReinsert) {
  FlowTable table(16);
  const FlowKey key = KeyOf(42);
  table.Insert(key, MakeFlowId(1, 0));
  ASSERT_TRUE(table.Erase(key));
  EXPECT_EQ(table.tombstones(), 1u);
  table.Insert(key, MakeFlowId(1, 1));
  EXPECT_EQ(table.tombstones(), 0u);  // Slot recycled, not a fresh one.
  EXPECT_GE(table.stats().tombstones_reused, 1u);
  EXPECT_EQ(table.Find(key), MakeFlowId(1, 1));
}

TEST(FlowTableTest, ChurnThousandsOfFlowsMatchesReferenceMap) {
  // Mirror every operation into unordered_map and compare continuously:
  // rehashes and tombstone recycling must never lose or corrupt a mapping.
  FlowTable table;
  std::unordered_map<FlowKey, FlowId, FlowKeyHash> reference;
  std::vector<FlowKey> live_keys;
  Rng rng(0xF10F1);
  uint32_t next = 0;
  for (int step = 0; step < 30000; ++step) {
    const bool insert = live_keys.empty() || (rng.Next() % 3) != 0;
    if (insert) {
      const FlowKey key = KeyOf(next);
      const FlowId id = MakeFlowId(next & kFlowSlotMask, next & kFlowGenMask);
      ++next;
      if (reference.count(key) != 0) {
        continue;  // KeyOf collisions across the wrap would double-insert.
      }
      table.Insert(key, id);
      reference[key] = id;
      live_keys.push_back(key);
    } else {
      const size_t victim = rng.Next() % live_keys.size();
      const FlowKey key = live_keys[victim];
      EXPECT_TRUE(table.Erase(key));
      reference.erase(key);
      live_keys[victim] = live_keys.back();
      live_keys.pop_back();
    }
    if (step % 997 == 0) {
      for (const auto& [key, id] : reference) {
        ASSERT_EQ(table.Find(key), id);
      }
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  EXPECT_GT(table.stats().rehashes, 0u);
  for (const auto& [key, id] : reference) {
    ASSERT_EQ(table.Find(key), id);
  }
  // Deleted keys must actually be gone.
  for (uint32_t i = 0; i < next; ++i) {
    const FlowKey key = KeyOf(i);
    const auto it = reference.find(key);
    ASSERT_EQ(table.Find(key), it == reference.end() ? kInvalidFlow : it->second);
  }
}

TEST(FlowTableTest, CapacityIsPowerOfTwoAndBoundsLoadFactor) {
  FlowTable table(8);
  for (uint32_t i = 0; i < 5000; ++i) {
    table.Insert(KeyOf(i), MakeFlowId(i & kFlowSlotMask, 0));
    ASSERT_EQ(table.capacity() & (table.capacity() - 1), 0u);
    ASSERT_LE(table.LoadFactor(), 7.0 / 8.0 + 1e-9);
  }
  for (uint32_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(table.Find(KeyOf(i)), MakeFlowId(i & kFlowSlotMask, 0));
  }
  EXPECT_GT(table.stats().lookups, 0u);
  EXPECT_GT(table.AvgProbeLength(), 0.0);
  EXPECT_GE(table.stats().max_probe, 1u);
}

TEST(FlowSlabTest, AllocateResolvesAndFreeStalesId) {
  FlowSlab slab;
  const FlowId a = slab.Allocate();
  const FlowId b = slab.Allocate();
  EXPECT_NE(a, b);
  EXPECT_NE(a, kInvalidFlow);
  Flow* flow = slab.Get(a);
  ASSERT_NE(flow, nullptr);
  flow->mss = 9000;
  EXPECT_EQ(slab.Get(a), flow);  // Stable address.
  EXPECT_EQ(slab.live(), 2u);

  slab.Free(a);
  EXPECT_EQ(slab.Get(a), nullptr);  // Stale generation rejected.
  EXPECT_EQ(slab.live(), 1u);

  // The freed slot is recycled under a new generation; the old id still
  // resolves to nullptr while the new one resolves to a Reset() flow.
  const FlowId c = slab.Allocate();
  EXPECT_EQ(FlowSlotOf(c), FlowSlotOf(a));
  EXPECT_NE(FlowGenOf(c), FlowGenOf(a));
  EXPECT_EQ(slab.Get(a), nullptr);
  Flow* recycled = slab.Get(c);
  ASSERT_NE(recycled, nullptr);
  EXPECT_EQ(recycled->mss, 1448);  // Reset, not leftover state.
}

TEST(FlowSlabTest, OutOfRangeAndInvalidIdsRejected) {
  FlowSlab slab;
  EXPECT_EQ(slab.Get(kInvalidFlow), nullptr);
  EXPECT_EQ(slab.Get(MakeFlowId(123456, 0)), nullptr);
  const FlowId id = slab.Allocate();
  EXPECT_EQ(slab.Get(MakeFlowId(FlowSlotOf(id), FlowGenOf(id) + 1)), nullptr);
}

TEST(FlowSlabTest, ChurnKeepsAddressesStableAcrossGrowth) {
  FlowSlab slab;
  std::vector<FlowId> ids;
  std::vector<Flow*> addrs;
  // Grow across several chunks, then verify early addresses never moved.
  for (uint32_t i = 0; i < FlowSlab::kChunkSlots * 3 + 17; ++i) {
    ids.push_back(slab.Allocate());
    addrs.push_back(slab.Get(ids.back()));
    ASSERT_NE(addrs.back(), nullptr);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(slab.Get(ids[i]), addrs[i]);
  }
  EXPECT_EQ(slab.capacity_slots() % FlowSlab::kChunkSlots, 0u);

  // Free every other flow and re-allocate: recycled ids reuse slots (no
  // growth) and stale ids stay dead.
  const size_t before = slab.capacity_slots();
  std::vector<FlowId> freed;
  for (size_t i = 0; i < ids.size(); i += 2) {
    slab.Free(ids[i]);
    freed.push_back(ids[i]);
  }
  for (size_t i = 0; i < freed.size(); ++i) {
    const FlowId id = slab.Allocate();
    ASSERT_NE(slab.Get(id), nullptr);
  }
  EXPECT_EQ(slab.capacity_slots(), before);
  for (const FlowId id : freed) {
    ASSERT_EQ(slab.Get(id), nullptr);
  }
}

}  // namespace
}  // namespace tas
