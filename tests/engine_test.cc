// Integration tests for the baseline TCP engine (handshake, transfer
// integrity, loss recovery, teardown) over the simulated network, driven
// through the EngineStack as the Linux/IX/mTCP models use it.
#include <gtest/gtest.h>

#include <numeric>

#include "src/harness/experiment.h"

namespace tas {
namespace {

LinkConfig TestLink(double drop_rate = 0.0) {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  if (drop_rate > 0) {
    link.faults.Add(BernoulliLoss(drop_rate));
  }
  return link;
}

// Receives bytes and records the stream; closes when the peer closes.
class RecordingServer : public AppHandler {
 public:
  RecordingServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }
  void OnAccepted(ConnId conn, uint16_t) override { accepted_.push_back(conn); }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    const size_t n = stack_->Recv(conn, buf.data(), bytes);
    received_.insert(received_.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  }
  void OnRemoteClosed(ConnId conn) override {
    remote_closed_ = true;
    stack_->Close(conn);
  }
  void OnClosed(ConnId) override { fully_closed_ = true; }

  Stack* stack_;
  uint16_t port_;
  std::vector<ConnId> accepted_;
  std::vector<uint8_t> received_;
  bool remote_closed_ = false;
  bool fully_closed_ = false;
};

// Connects, streams a deterministic pattern, then closes.
class PatternClient : public AppHandler {
 public:
  PatternClient(Stack* stack, IpAddr server, uint16_t port, size_t total)
      : stack_(stack), server_(server), port_(port), total_(total) {}
  void Start() {
    stack_->SetHandler(this);
    conn_ = stack_->Connect(server_, port_);
  }
  void OnConnected(ConnId conn, bool success) override {
    connected_ = success;
    if (success) {
      Pump(conn);
    }
  }
  void OnSendSpace(ConnId conn, size_t bytes) override {
    acked_ += bytes;
    Pump(conn);
    if (sent_ >= total_ && acked_ >= total_ && !closed_) {
      closed_ = true;
      stack_->Close(conn);
    }
  }
  void OnClosed(ConnId) override { fully_closed_ = true; }

  void Pump(ConnId conn) {
    while (sent_ < total_) {
      uint8_t chunk[997];
      const size_t want = std::min(sizeof(chunk), total_ - sent_);
      for (size_t i = 0; i < want; ++i) {
        chunk[i] = static_cast<uint8_t>((sent_ + i) % 251);
      }
      const size_t n = stack_->Send(conn, chunk, want);
      sent_ += n;
      if (n < want) {
        break;
      }
    }
  }

  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  size_t total_;
  ConnId conn_ = kInvalidConn;
  size_t sent_ = 0;
  size_t acked_ = 0;
  bool connected_ = false;
  bool closed_ = false;
  bool fully_closed_ = false;
};

void ExpectPattern(const std::vector<uint8_t>& data, size_t total) {
  ASSERT_EQ(data.size(), total);
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(data[i], static_cast<uint8_t>(i % 251)) << "at offset " << i;
  }
}

class EngineTransferTest : public ::testing::TestWithParam<StackKind> {};

TEST_P(EngineTransferTest, HandshakeTransferTeardown) {
  HostSpec spec;
  spec.stack = GetParam();
  spec.app_cores = 1;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 200000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(5));

  EXPECT_TRUE(client.connected_);
  ASSERT_EQ(server.accepted_.size(), 1u);
  ExpectPattern(server.received_, kTotal);
  EXPECT_TRUE(server.remote_closed_);
  EXPECT_TRUE(client.fully_closed_);
  EXPECT_TRUE(server.fully_closed_);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, EngineTransferTest,
                         ::testing::Values(StackKind::kLinux, StackKind::kIx,
                                           StackKind::kMtcp));

class EngineLossTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineLossTest, RecoversUnderRandomLoss) {
  // Property: regardless of loss rate, the byte stream is delivered intact,
  // in order, exactly once.
  const double drop_rate = GetParam() / 100.0;
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink(drop_rate));

  RecordingServer server(exp->host(0).stack(), 7000);
  constexpr size_t kTotal = 100000;
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kTotal);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(30));

  ExpectPattern(server.received_, kTotal);
}

INSTANTIATE_TEST_SUITE_P(LossRates, EngineLossTest, ::testing::Values(1, 2, 5, 10));

TEST(EngineTest, ConnectToClosedPortTimesOut) {
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());

  bool connected = true;
  bool callback_fired = false;
  class Handler : public AppHandler {
   public:
    Handler(bool* connected, bool* fired) : connected_(connected), fired_(fired) {}
    void OnConnected(ConnId, bool success) override {
      *connected_ = success;
      *fired_ = true;
    }
    bool* connected_;
    bool* fired_;
  } handler(&connected, &callback_fired);

  exp->host(1).stack()->SetHandler(&handler);
  exp->host(1).stack()->Connect(exp->host(0).ip(), 4444);  // Nobody listens.
  exp->sim().RunUntil(Sec(120));
  EXPECT_TRUE(callback_fired);
  EXPECT_FALSE(connected);
}

TEST(EngineTest, ManyConcurrentConnectionsAllTransfer) {
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  spec.app_cores = 2;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());

  RecordingServer server(exp->host(0).stack(), 7000);
  server.Start();

  constexpr int kConns = 32;
  constexpr size_t kPerConn = 5000;
  std::vector<std::unique_ptr<PatternClient>> clients;
  // One handler per stack only — use a single client app with many conns via
  // BulkSender-style pattern instead: simpler, reuse PatternClient per conn
  // is impossible (one handler per stack). Drive via one PatternClient and
  // additional raw connects exercised in tas_test; here spot-check bytes.
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, kPerConn * kConns);
  client.Start();
  exp->sim().RunUntil(Sec(10));
  ExpectPattern(server.received_, kPerConn * kConns);
}

TEST(EngineTest, RttEstimateReasonable) {
  HostSpec spec;
  spec.stack = StackKind::kLinux;
  auto exp = Experiment::PointToPoint(spec, spec, TestLink());
  RecordingServer server(exp->host(0).stack(), 7000);
  PatternClient client(exp->host(1).stack(), exp->host(0).ip(), 7000, 50000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Ms(100));

  EngineStack* engine = exp->host(1).engine();
  ASSERT_NE(engine, nullptr);
  // Connection may be closed already; RTT was sampled during transfer.
  // Propagation is 2us each way; RTT estimate should be in [4us, 1ms].
  // (Checked indirectly: transfer completed quickly.)
  ExpectPattern(server.received_, 50000);
}

}  // namespace
}  // namespace tas
