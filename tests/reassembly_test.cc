// Tests for out-of-order segment tracking: the Linux-class multi-interval
// reassembly buffer (with SACK blocks) and the TAS single-interval tracker.
#include <gtest/gtest.h>

#include "src/tcp/reassembly.h"
#include "src/tcp/seq.h"
#include "src/util/rng.h"

namespace tas {
namespace {

TEST(SeqTest, WrapAroundComparisons) {
  EXPECT_TRUE(SeqLt(0xFFFFFFF0u, 0x00000010u));  // Across the wrap.
  EXPECT_TRUE(SeqGt(0x00000010u, 0xFFFFFFF0u));
  EXPECT_TRUE(SeqLe(5u, 5u));
  EXPECT_FALSE(SeqLt(5u, 5u));
}

TEST(SeqTest, UnwrapNearWrap) {
  const uint32_t isn = 0xFFFFFF00u;
  // Offset 0x200 crosses the 32-bit boundary.
  const uint32_t wire = WrapSeq(isn, 0x200);
  EXPECT_EQ(UnwrapSeq(isn, wire, 0x1F0), 0x200u);
  // A slightly old wire seq unwraps below the reference.
  const uint32_t old_wire = WrapSeq(isn, 0x1C0);
  EXPECT_EQ(UnwrapSeq(isn, old_wire, 0x200), 0x1C0u);
}

TEST(ReassemblyTest, InOrderAdvances) {
  ReassemblyBuffer buf;
  auto r = buf.Insert(0, 0, 100);
  EXPECT_EQ(r.advanced, 100u);
  EXPECT_TRUE(buf.Empty());
}

TEST(ReassemblyTest, OutOfOrderHeldThenMerged) {
  ReassemblyBuffer buf;
  auto r1 = buf.Insert(0, 200, 100);  // Gap at [0,200).
  EXPECT_EQ(r1.advanced, 0u);
  EXPECT_EQ(buf.PendingBytes(), 100u);
  auto r2 = buf.Insert(0, 0, 200);  // Fills the gap.
  EXPECT_EQ(r2.advanced, 300u);
  EXPECT_TRUE(buf.Empty());
}

TEST(ReassemblyTest, OverlapsMerge) {
  ReassemblyBuffer buf;
  buf.Insert(0, 100, 50);
  buf.Insert(0, 140, 60);  // Overlaps [140,150).
  EXPECT_EQ(buf.NumIntervals(), 1u);
  EXPECT_EQ(buf.PendingBytes(), 100u);  // [100,200).
}

TEST(ReassemblyTest, AbuttingMerge) {
  ReassemblyBuffer buf;
  buf.Insert(0, 100, 50);
  buf.Insert(0, 150, 50);
  EXPECT_EQ(buf.NumIntervals(), 1u);
  EXPECT_EQ(buf.PendingBytes(), 100u);
}

TEST(ReassemblyTest, DisjointIntervalsTracked) {
  ReassemblyBuffer buf;
  buf.Insert(0, 100, 10);
  buf.Insert(0, 300, 10);
  buf.Insert(0, 500, 10);
  EXPECT_EQ(buf.NumIntervals(), 3u);
  EXPECT_EQ(buf.PendingBytes(), 30u);
}

TEST(ReassemblyTest, DuplicateDetected) {
  ReassemblyBuffer buf;
  buf.Insert(0, 100, 50);
  auto r = buf.Insert(0, 110, 20);  // Fully inside.
  EXPECT_TRUE(r.duplicate);
  EXPECT_EQ(buf.PendingBytes(), 50u);
}

TEST(ReassemblyTest, BelowNextClipped) {
  ReassemblyBuffer buf;
  // [0, 50) already delivered (next=50); retransmission overlaps.
  auto r = buf.Insert(50, 0, 100);
  EXPECT_EQ(r.advanced, 50u);  // Only [50,100) is new.
}

TEST(ReassemblyTest, SackBlocksMostRecentFirst) {
  ReassemblyBuffer buf;
  buf.Insert(0, 100, 10);
  buf.Insert(0, 300, 10);
  buf.Insert(0, 500, 10);
  auto blocks = buf.SackBlocks(3);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].first, 500u);  // Most recently updated first (RFC 2018).
  EXPECT_EQ(blocks[1].first, 300u);
  EXPECT_EQ(blocks[2].first, 100u);
  // Updating an old interval moves it to the front.
  buf.Insert(0, 110, 10);
  blocks = buf.SackBlocks(3);
  EXPECT_EQ(blocks[0].first, 100u);
  EXPECT_EQ(blocks[0].second, 120u);
}

TEST(ReassemblyTest, SackBlockLimitRespected) {
  ReassemblyBuffer buf;
  for (int i = 0; i < 6; ++i) {
    buf.Insert(0, 100 + i * 100, 10);
  }
  EXPECT_EQ(buf.SackBlocks(3).size(), 3u);
  EXPECT_EQ(buf.NumIntervals(), 6u);
}

TEST(ReassemblyTest, ChainMergeOnFill) {
  ReassemblyBuffer buf;
  buf.Insert(0, 100, 100);  // [100,200)
  buf.Insert(0, 200, 100);  // Merges into [100,300).
  EXPECT_EQ(buf.NumIntervals(), 1u);
  auto r = buf.Insert(0, 0, 100);  // Fills [0,100) -> everything contiguous.
  EXPECT_EQ(r.advanced, 300u);
  EXPECT_TRUE(buf.Empty());
}

// Property: random segment arrivals always reconstruct the exact stream
// prefix; pending bytes never exceed what was inserted beyond `next`.
TEST(ReassemblyTest, RandomizedReconstructionProperty) {
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    ReassemblyBuffer buf;
    const uint64_t total = 5000;
    uint64_t next = 0;
    std::vector<bool> covered(total, false);
    // Generate random segments until the stream completes.
    int guard = 0;
    while (next < total && ++guard < 100000) {
      const uint64_t start = rng.NextUint64(total);
      const uint64_t len = 1 + rng.NextUint64(200);
      const uint64_t end = std::min(start + len, total);
      if (end <= next) {
        continue;
      }
      const auto r = buf.Insert(next, start, end - start);
      next += r.advanced;
      // Intervals must always lie strictly above next and be disjoint.
      uint64_t prev_end = next;
      for (const auto& [s, e] : buf.Intervals()) {
        EXPECT_GE(s, prev_end);
        EXPECT_GT(e, s);
        prev_end = e;
      }
    }
    EXPECT_EQ(next, total);
    EXPECT_TRUE(buf.Empty());
  }
}

TEST(SingleIntervalTest, TracksOneInterval) {
  SingleIntervalTracker tracker;
  EXPECT_TRUE(tracker.Add(200, 50, 100, 1000));
  EXPECT_EQ(tracker.start(), 200u);
  EXPECT_EQ(tracker.length(), 50u);
}

TEST(SingleIntervalTest, RejectsInOrderAndZero) {
  SingleIntervalTracker tracker;
  EXPECT_FALSE(tracker.Add(100, 50, 100, 1000));  // Not strictly OOO.
  EXPECT_FALSE(tracker.Add(200, 0, 100, 1000));   // Empty.
}

TEST(SingleIntervalTest, RejectsBeyondWindow) {
  SingleIntervalTracker tracker;
  EXPECT_FALSE(tracker.Add(900, 200, 100, 900));  // Ends at 1100 > 100+900.
  EXPECT_TRUE(tracker.Add(900, 200, 100, 1000));  // Exactly fits.
}

TEST(SingleIntervalTest, SameIntervalRuleExtends) {
  SingleIntervalTracker tracker;
  EXPECT_TRUE(tracker.Add(200, 50, 100, 10000));
  EXPECT_TRUE(tracker.Add(250, 50, 100, 10000));  // Abuts the end.
  EXPECT_EQ(tracker.length(), 100u);
  EXPECT_TRUE(tracker.Add(150, 50, 100, 10000));  // Abuts the start.
  EXPECT_EQ(tracker.start(), 150u);
  EXPECT_EQ(tracker.length(), 150u);
}

TEST(SingleIntervalTest, SecondIntervalDropped) {
  SingleIntervalTracker tracker;
  EXPECT_TRUE(tracker.Add(200, 50, 100, 10000));
  EXPECT_FALSE(tracker.Add(500, 50, 100, 10000));  // Disjoint: dropped.
  EXPECT_EQ(tracker.start(), 200u);
}

TEST(SingleIntervalTest, MergeConsumesWhenReached) {
  SingleIntervalTracker tracker;
  tracker.Add(200, 100, 100, 10000);
  EXPECT_EQ(tracker.MergeAt(150), 150u);  // Gap remains.
  EXPECT_FALSE(tracker.empty());
  EXPECT_EQ(tracker.MergeAt(200), 300u);  // Gap filled: consume.
  EXPECT_TRUE(tracker.empty());
}

TEST(SingleIntervalTest, MergePastInterval) {
  SingleIntervalTracker tracker;
  tracker.Add(200, 100, 100, 10000);
  // In-order data overshot the interval (retransmit covered it all).
  EXPECT_EQ(tracker.MergeAt(350), 350u);
  EXPECT_TRUE(tracker.empty());
}

}  // namespace
}  // namespace tas
