// Unit tests for src/util: RNG and distributions, statistics, the circular
// byte buffer, the SPSC queue, and the log histogram.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>

#include "src/util/logging.h"
#include "src/util/ring_buffer.h"
#include "src/util/rng.h"
#include "src/util/spsc_queue.h"
#include "src/util/stats.h"
#include "src/util/zipf.h"

namespace tas {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExp(42.0);
  }
  EXPECT_NEAR(sum / n, 42.0, 1.0);
}

TEST(RngTest, BoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    heads += rng.NextBool(0.9) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.9, 0.01);
}

TEST(ParetoTest, BoundsRespected) {
  Rng rng(19);
  BoundedPareto pareto(100, 10000, 1.2);
  for (int i = 0; i < 10000; ++i) {
    const double v = pareto.Sample(rng);
    EXPECT_GE(v, 100.0);
    EXPECT_LE(v, 10000.0);
  }
}

TEST(ParetoTest, EmpiricalMeanMatchesAnalytic) {
  Rng rng(23);
  BoundedPareto pareto(1448, 2e6, 1.05);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += pareto.Sample(rng);
  }
  const double empirical = sum / n;
  EXPECT_NEAR(empirical / pareto.Mean(), 1.0, 0.05);
}

TEST(ZipfTest, SkewOrdersPopularity) {
  Rng rng(29);
  ZipfGenerator zipf(1000, 0.9);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  // Rank 0 must dominate rank 100 which must dominate rank 900.
  EXPECT_GT(counts[0], counts[100]);
  EXPECT_GT(counts[100], counts[900]);
  // Zipf s=0.9: ratio of rank0 to rank9 ~ 10^0.9 ~ 7.9.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[9], 7.9, 2.5);
}

// Chi-square goodness of fit for the rejection-inversion sampler against the
// exact zipf pmf. With df = 99 the chi-square 99.9th percentile is ~148.2; a
// correct sampler fails this with probability 1e-3 per seed, and the seed is
// fixed, so the test is deterministic in practice.
TEST(ZipfTest, ChiSquareGoodnessOfFit) {
  constexpr size_t kRanks = 100;
  constexpr int kDraws = 200000;
  for (const double s : {0.6, 0.9, 1.0, 1.3}) {
    Rng rng(4242);
    ZipfGenerator zipf(kRanks, s);
    std::vector<int> counts(kRanks, 0);
    for (int i = 0; i < kDraws; ++i) {
      const size_t k = zipf.Sample(rng);
      ASSERT_LT(k, kRanks);
      counts[k]++;
    }
    double chi2 = 0;
    for (size_t k = 0; k < kRanks; ++k) {
      const double expected = zipf.Pmf(k) * kDraws;
      ASSERT_GT(expected, 5.0);  // Chi-square validity: all cells populated.
      const double diff = counts[k] - expected;
      chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 148.2) << "zipf s=" << s << " rejects goodness-of-fit";
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfGenerator zipf(500, 1.1);
  double sum = 0;
  for (size_t k = 0; k < zipf.size(); ++k) {
    sum += zipf.Pmf(k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, SingleRankAlwaysZero) {
  Rng rng(7);
  ZipfGenerator zipf(1, 0.9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 0u);
  }
}

TEST(RunningStatsTest, Moments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // Sample stddev.
}

TEST(RunningStatsTest, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStatsTest, MergeEmptyCases) {
  RunningStats filled;
  for (int i = 1; i <= 10; ++i) {
    filled.Add(i);
  }
  RunningStats empty;
  // Merging an empty accumulator is a no-op.
  RunningStats a = filled;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 10u);
  EXPECT_DOUBLE_EQ(a.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(a.variance(), filled.variance());
  // Merging into an empty accumulator copies the other side exactly.
  RunningStats b;
  b.Merge(filled);
  EXPECT_EQ(b.count(), 10u);
  EXPECT_DOUBLE_EQ(b.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(b.min(), 1.0);
  EXPECT_DOUBLE_EQ(b.max(), 10.0);
  EXPECT_DOUBLE_EQ(b.sum(), filled.sum());
}

TEST(RunningStatsTest, MergeUnevenSplitMatchesSinglePass) {
  // Split the stream 1:9 (not interleaved) so the pairwise-merge math is
  // exercised with very different counts and means on each side.
  RunningStats head;
  RunningStats tail;
  RunningStats all;
  Rng rng(91);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextExp(3.0) + (i < 500 ? 100.0 : 0.0);
    (i < 500 ? head : tail).Add(v);
    all.Add(v);
  }
  head.Merge(tail);
  EXPECT_EQ(head.count(), all.count());
  EXPECT_NEAR(head.mean(), all.mean(), 1e-9 * all.mean());
  EXPECT_NEAR(head.variance(), all.variance(), 1e-6 * all.variance());
  EXPECT_DOUBLE_EQ(head.min(), all.min());
  EXPECT_DOUBLE_EQ(head.max(), all.max());
  EXPECT_NEAR(head.sum(), all.sum(), 1e-6);
}

TEST(LatencyRecorderTest, ExactPercentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) {
    rec.Add(i);
  }
  EXPECT_NEAR(rec.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(rec.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(rec.Median(), 50.5, 1e-9);
  EXPECT_NEAR(rec.Percentile(99), 99.01, 0.1);
  EXPECT_NEAR(rec.Mean(), 50.5, 1e-9);
}

TEST(LatencyRecorderTest, ReservoirBounded) {
  LatencyRecorder rec(1000);
  for (int i = 0; i < 100000; ++i) {
    rec.Add(i % 100);
  }
  EXPECT_EQ(rec.count(), 100000u);
  // Percentiles still roughly correct from the reservoir.
  EXPECT_NEAR(rec.Median(), 50, 10);
}

TEST(LatencyRecorderTest, ReservoirDeterministicAcrossRuns) {
  // The reservoir uses a fixed internal seed, so two recorders fed the same
  // sample stream must retain identical reservoirs — even far past capacity.
  LatencyRecorder a(512);
  LatencyRecorder b(512);
  Rng ra(77);
  Rng rb(77);
  for (int i = 0; i < 50000; ++i) {
    a.Add(ra.NextExp(5.0));
    b.Add(rb.NextExp(5.0));
  }
  EXPECT_EQ(a.count(), b.count());
  for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), b.Percentile(p)) << "p=" << p;
  }
}

TEST(LatencyRecorderTest, CdfMonotone) {
  LatencyRecorder rec;
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    rec.Add(rng.NextExp(10));
  }
  auto cdf = rec.Cdf(100);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(ByteRingTest, BasicWriteRead) {
  ByteRing ring(16);
  const uint8_t data[] = "hello";
  EXPECT_EQ(ring.Write(data, 5), 5u);
  EXPECT_EQ(ring.used(), 5u);
  uint8_t out[8] = {};
  EXPECT_EQ(ring.Read(out, 8), 5u);
  EXPECT_EQ(std::memcmp(out, "hello", 5), 0);
  EXPECT_TRUE(ring.empty());
}

TEST(ByteRingTest, WrapAround) {
  ByteRing ring(8);
  uint8_t buf[6] = {1, 2, 3, 4, 5, 6};
  ASSERT_EQ(ring.Write(buf, 6), 6u);
  uint8_t out[6];
  ASSERT_EQ(ring.Read(out, 4), 4u);
  // Now head=6, tail=4; write 5 more wraps around the 8-byte array.
  uint8_t buf2[5] = {7, 8, 9, 10, 11};
  ASSERT_EQ(ring.Write(buf2, 5), 5u);
  EXPECT_EQ(ring.used(), 7u);
  uint8_t out2[7];
  ASSERT_EQ(ring.Read(out2, 7), 7u);
  const uint8_t expect[7] = {5, 6, 7, 8, 9, 10, 11};
  EXPECT_EQ(std::memcmp(out2, expect, 7), 0);
}

TEST(ByteRingTest, WriteRespectsCapacity) {
  ByteRing ring(4);
  uint8_t buf[10] = {};
  EXPECT_EQ(ring.Write(buf, 10), 4u);
  EXPECT_EQ(ring.free_space(), 0u);
  EXPECT_EQ(ring.Write(buf, 1), 0u);
}

TEST(ByteRingTest, WriteAtAndAdvanceHead) {
  ByteRing ring(16);
  const uint8_t a[] = {1, 2, 3, 4};
  // Place out-of-order data at offset 8 without moving head.
  ASSERT_TRUE(ring.WriteAt(8, a, 4));
  EXPECT_EQ(ring.used(), 0u);
  const uint8_t b[8] = {9, 9, 9, 9, 9, 9, 9, 9};
  ASSERT_TRUE(ring.WriteAt(0, b, 8));
  ring.AdvanceHead(12);
  EXPECT_EQ(ring.used(), 12u);
  uint8_t out[12];
  ASSERT_EQ(ring.Read(out, 12), 12u);
  EXPECT_EQ(out[8], 1);
  EXPECT_EQ(out[11], 4);
}

TEST(ByteRingTest, WriteAtRejectsOutOfWindow) {
  ByteRing ring(16);
  uint8_t a[4] = {};
  EXPECT_FALSE(ring.WriteAt(14, a, 4));  // Ends beyond tail+capacity.
  EXPECT_TRUE(ring.WriteAt(12, a, 4));
}

TEST(ByteRingTest, PeekAndDiscard) {
  ByteRing ring(16);
  const uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
  ring.Write(data, 8);
  uint8_t out[4];
  EXPECT_EQ(ring.Peek(2, out, 4), 4u);
  EXPECT_EQ(out[0], 3);
  EXPECT_EQ(ring.used(), 8u);  // Peek does not consume.
  ring.Discard(5);
  EXPECT_EQ(ring.used(), 3u);
  EXPECT_EQ(ring.Peek(5, out, 1), 1u);
  EXPECT_EQ(out[0], 6);
}

TEST(ByteRingTest, LongStreamProperty) {
  // Write/read random chunks; the read stream must equal the write stream.
  ByteRing ring(64);
  Rng rng(41);
  std::vector<uint8_t> written;
  std::vector<uint8_t> read;
  uint8_t next = 0;
  while (written.size() < 10000) {
    const size_t w = rng.NextUint64(32) + 1;
    std::vector<uint8_t> chunk(w);
    for (auto& c : chunk) {
      c = next++;
    }
    const size_t accepted = ring.Write(chunk.data(), w);
    written.insert(written.end(), chunk.begin(), chunk.begin() + static_cast<long>(accepted));
    next = static_cast<uint8_t>(chunk[0] + accepted);  // Rewind sequence.
    uint8_t out[32];
    const size_t r = ring.Read(out, rng.NextUint64(32) + 1);
    read.insert(read.end(), out, out + r);
  }
  while (!ring.empty()) {
    uint8_t out[32];
    const size_t r = ring.Read(out, 32);
    read.insert(read.end(), out, out + r);
  }
  ASSERT_EQ(written.size(), read.size());
  EXPECT_EQ(written, read);
}

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  for (int i = 0; i < 5; ++i) {
    auto v = queue.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(SpscQueueTest, FullRejects) {
  SpscQueue<int> queue(4);
  size_t pushed = 0;
  while (queue.Push(1)) {
    ++pushed;
  }
  EXPECT_GE(pushed, 4u);
  EXPECT_FALSE(queue.Push(2));
  queue.Pop();
  EXPECT_TRUE(queue.Push(2));
}

TEST(SpscQueueTest, TwoThreadsTransferAll) {
  SpscQueue<uint64_t> queue(1024);
  constexpr uint64_t kCount = 200000;
  uint64_t sum = 0;
  std::thread consumer([&] {
    uint64_t received = 0;
    while (received < kCount) {
      if (auto v = queue.Pop()) {
        sum += *v;
        ++received;
      }
    }
  });
  for (uint64_t i = 1; i <= kCount; ++i) {
    while (!queue.Push(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(LogHistogramTest, PercentileBuckets) {
  LogHistogram hist;
  for (uint64_t i = 0; i < 1000; ++i) {
    hist.Add(100);
  }
  hist.Add(100000);
  EXPECT_EQ(hist.count(), 1001u);
  EXPECT_LT(hist.ApproxPercentile(50), 256u);
  EXPECT_GT(hist.ApproxPercentile(99.99), 60000u);
}

TEST(LogHistogramTest, ApproxPercentileEmpty) {
  LogHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.ApproxPercentile(0), 0u);
  EXPECT_EQ(hist.ApproxPercentile(50), 0u);
  EXPECT_EQ(hist.ApproxPercentile(100), 0u);
}

TEST(LogHistogramTest, ApproxPercentileSingleBucket) {
  // All samples land in one power-of-two bucket; every percentile > 0
  // reports that bucket's upper bound.
  LogHistogram hist;
  for (int i = 0; i < 100; ++i) {
    hist.Add(100);  // Bucket [64, 127].
  }
  EXPECT_EQ(hist.ApproxPercentile(1), 127u);
  EXPECT_EQ(hist.ApproxPercentile(50), 127u);
  EXPECT_EQ(hist.ApproxPercentile(100), 127u);
}

TEST(LogHistogramTest, ApproxPercentileBoundaries) {
  LogHistogram hist;
  hist.Add(0);     // Bucket 0 (upper bound 0).
  hist.Add(1000);  // Bucket [512, 1023].
  // p=0 clamps to a target rank of one sample: the first non-empty bucket.
  EXPECT_EQ(hist.ApproxPercentile(0), 0u);
  // p=100 must walk to the bucket holding the largest sample.
  EXPECT_EQ(hist.ApproxPercentile(100), 1023u);
  // Zero values live in bucket 0 and report an upper bound of 0.
  EXPECT_EQ(hist.ApproxPercentile(50), 0u);
}

TEST(LogHistogramTest, MergeMatchesSinglePass) {
  // Merging split histograms must equal adding every sample to one: same
  // count, same percentile answers at every bucketed rank.
  LogHistogram combined, head, tail;
  for (uint64_t i = 1; i <= 2000; ++i) {
    combined.Add(i * 7);
    (i <= 600 ? head : tail).Add(i * 7);
  }
  head.Merge(tail);
  EXPECT_EQ(head.count(), combined.count());
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(head.ApproxPercentile(p), combined.ApproxPercentile(p)) << "p=" << p;
  }
  // Merging an empty histogram is a no-op in both directions.
  LogHistogram empty;
  head.Merge(empty);
  EXPECT_EQ(head.count(), combined.count());
  empty.Merge(combined);
  EXPECT_EQ(empty.count(), combined.count());
  EXPECT_EQ(empty.ApproxPercentile(50), combined.ApproxPercentile(50));
}

TEST(RateCounterTest, Rates) {
  RateCounter counter;
  counter.Start(0);
  counter.Add(500);
  counter.AddBytes(1000);
  EXPECT_DOUBLE_EQ(counter.Rate(Sec(1)), 500.0);
  EXPECT_DOUBLE_EQ(counter.BitRate(Sec(1)), 8000.0);
}

}  // namespace
}  // namespace tas
