// Origin-pool chaos: the reverse proxy's pooled origin connections must
// survive packet loss, link flaps, and origin-side connection churn without
// losing or double-dispatching a single client request. The client generator
// verifies exactly-once end to end (FIFO request-id matching + a global
// responded set + deterministic body sizes), so these tests simply turn the
// fault machinery loose and assert the ledger balances.
#include <gtest/gtest.h>

#include <memory>

#include "src/fault/injector.h"
#include "src/harness/experiment.h"
#include "src/proxy/origin_server.h"
#include "src/proxy/proxy_client.h"
#include "src/proxy/proxy_server.h"

namespace tas {
namespace {

LinkConfig ChaosLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  // Default seed: identity-derived, so impairment draws match across rigs.
  return link;
}

HostSpec TasSpec() {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  return spec;
}

struct Rig {
  std::unique_ptr<Experiment> exp;
  std::unique_ptr<ProxyServer> proxy;
  std::unique_ptr<OriginServer> origin;
  std::unique_ptr<ProxyClientGen> clients;
};

Rig MakeRig(ProxyServerConfig proxy_cfg, OriginServerConfig origin_cfg,
            ProxyClientConfig client_cfg) {
  Rig rig;
  rig.exp = Experiment::Star({TasSpec(), TasSpec(), TasSpec()}, {ChaosLink()});
  proxy_cfg.pool.origin_ip = rig.exp->host(1).ip();
  proxy_cfg.pool.origin_port = origin_cfg.port;
  client_cfg.proxy_ip = rig.exp->host(0).ip();
  client_cfg.proxy_port = proxy_cfg.listen_port;
  client_cfg.min_body_bytes = origin_cfg.min_body_bytes;
  client_cfg.body_spread = origin_cfg.body_spread;
  rig.proxy = std::make_unique<ProxyServer>(rig.exp->host_sim(0), rig.exp->host(0).stack(), proxy_cfg);
  rig.origin =
      std::make_unique<OriginServer>(rig.exp->host_sim(1), rig.exp->host(1).stack(), origin_cfg);
  rig.clients =
      std::make_unique<ProxyClientGen>(rig.exp->host_sim(2), rig.exp->host(2).stack(), client_cfg);
  rig.origin->Start();
  rig.proxy->Start();
  rig.clients->Start();
  return rig;
}

bool RunUntilCompleted(Rig& rig, uint64_t target, TimeNs deadline) {
  while (rig.exp->sim().Now() < deadline && rig.clients->completed() < target) {
    rig.exp->sim().RunUntil(rig.exp->sim().Now() + Ms(10));
  }
  return rig.clients->completed() >= target;
}

void ExpectExactlyOnce(Rig& rig, uint64_t expected) {
  EXPECT_EQ(rig.clients->issued(), expected);
  EXPECT_EQ(rig.clients->completed(), expected);
  EXPECT_EQ(rig.clients->duplicates(), 0u);
  EXPECT_EQ(rig.clients->mismatches(), 0u);
  EXPECT_EQ(rig.clients->bad_bodies(), 0u);
}

// Origin closes every pooled connection after a handful of responses: the
// pool must retire and re-establish connections continuously, re-dispatching
// any request stranded behind a FIN, without dropping or duplicating one.
TEST(ProxyChaosTest, OriginConnectionChurnKeepsExactlyOnce) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 0;  // Every request crosses the pool.
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;
  proxy_cfg.pool.max_conns = 4;
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 300;
  origin_cfg.body_spread = 700;
  origin_cfg.close_after_requests = 7;  // Aggressive churn.
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 8;
  client_cfg.total_connections = 80;
  client_cfg.requests_per_connection = 5;
  client_cfg.num_objects = 1000;
  Rig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  ASSERT_TRUE(RunUntilCompleted(rig, 400, Sec(60)));
  ExpectExactlyOnce(rig, 400);
  // The churn actually happened: conns retired and were re-opened.
  EXPECT_GT(rig.origin->conns_closed_by_quota(), 10u);
  EXPECT_GT(rig.proxy->pool().stats().retired, 10u);
  EXPECT_GT(rig.proxy->pool().stats().opened, rig.proxy->pool().stats().retired);
  EXPECT_LE(rig.proxy->pool().stats().conns_hw, 4u);
}

// Bernoulli loss window on the origin link: retransmission keeps pooled
// conns alive through it, and the request ledger still balances.
TEST(ProxyChaosTest, LossWindowOnOriginLink) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 0;
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;
  proxy_cfg.pool.max_conns = 8;
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 400;
  origin_cfg.body_spread = 800;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 8;
  client_cfg.total_connections = 60;
  client_cfg.requests_per_connection = 5;
  client_cfg.num_objects = 500;
  Rig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  FaultSchedule chaos;
  chaos.ImpairmentWindowBoth(Ms(5), Ms(120), rig.exp->host_link(1), BernoulliLoss(0.05));
  rig.exp->faults().Install(std::move(chaos));

  ASSERT_TRUE(RunUntilCompleted(rig, 300, Sec(60)));
  ExpectExactlyOnce(rig, 300);
}

// Hard link flap on the origin link mid-run plus origin-side churn: dead
// conns get redispatched, the pool re-establishes, nothing is lost.
TEST(ProxyChaosTest, OriginLinkFlapWithChurn) {
  ProxyServerConfig proxy_cfg;
  proxy_cfg.cache_bytes = 0;
  proxy_cfg.splice_min_body = 0xFFFFFFFFu;
  proxy_cfg.pool.max_conns = 6;
  OriginServerConfig origin_cfg;
  origin_cfg.min_body_bytes = 300;
  origin_cfg.body_spread = 400;
  origin_cfg.close_after_requests = 9;
  ProxyClientConfig client_cfg;
  client_cfg.concurrency = 6;
  client_cfg.total_connections = 60;
  client_cfg.requests_per_connection = 5;
  client_cfg.num_objects = 500;
  Rig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);

  FaultSchedule chaos;
  chaos.LinkFlap(Ms(20), Ms(15), rig.exp->host_link(1));
  chaos.LinkFlap(Ms(80), Ms(10), rig.exp->host_link(1));
  rig.exp->faults().Install(std::move(chaos));

  ASSERT_TRUE(RunUntilCompleted(rig, 300, Sec(120)));
  ExpectExactlyOnce(rig, 300);
  EXPECT_GT(rig.proxy->pool().stats().retired, 0u);
  // Determinism under chaos: a second identical run lands identically.
}

// Same chaos scenario twice with one seed: byte-for-byte identical outcome.
TEST(ProxyChaosTest, ChaosRunsAreDeterministic) {
  auto run = [] {
    ProxyServerConfig proxy_cfg;
    proxy_cfg.cache_bytes = 64 * 1024;
    proxy_cfg.splice_min_body = 0xFFFFFFFFu;
    proxy_cfg.pool.max_conns = 4;
    OriginServerConfig origin_cfg;
    origin_cfg.close_after_requests = 6;
    ProxyClientConfig client_cfg;
    client_cfg.concurrency = 4;
    client_cfg.total_connections = 40;
    client_cfg.requests_per_connection = 5;
    client_cfg.rng_seed = 777;
    client_cfg.num_objects = 300;
    Rig rig = MakeRig(proxy_cfg, origin_cfg, client_cfg);
    FaultSchedule chaos;
    chaos.ImpairmentWindowBoth(Ms(5), Ms(60), rig.exp->host_link(1), BernoulliLoss(0.03));
    rig.exp->faults().Install(std::move(chaos));
    RunUntilCompleted(rig, 200, Sec(60));
    return std::tuple<uint64_t, uint64_t, uint64_t, TimeNs>(
        rig.clients->completed(), rig.proxy->pool().stats().opened,
        rig.proxy->pool().stats().redispatched, rig.exp->sim().Now());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace tas
