// Graceful half-close on TAS (paper §2: TCP termination is a slow-path
// concern, but a FIN only ends one direction). A peer that closes its send
// side must still receive everything the other side owes it: the receiving
// flow keeps transmitting from kCloseWait (still fast-path eligible), and
// the FIN'd side keeps consuming data in kFinWait1/2. libTAS surfaces the
// peer's FIN as OnRemoteClosed and full termination as OnClosed, in that
// order.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/harness/experiment.h"

namespace tas {
namespace {

LinkConfig TestLink() {
  LinkConfig link;
  link.gbps = 10.0;
  link.propagation_delay = Us(2);
  link.queue_limit_pkts = 256;
  return link;
}

HostSpec TasSpec() {
  HostSpec spec;
  spec.stack = StackKind::kTas;
  return spec;
}

// Server: consumes the request, and once the client half-closes, answers
// with `response_bytes` on the half-open connection, then closes.
class HalfCloseServer : public AppHandler {
 public:
  HalfCloseServer(Stack* stack, uint16_t port, size_t response_bytes)
      : stack_(stack), port_(port), response_bytes_(response_bytes) {}

  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }

  void OnAccepted(ConnId conn, uint16_t) override { conn_ = conn; }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    received_ += stack_->Recv(conn, buf.data(), bytes);
  }
  void OnRemoteClosed(ConnId conn) override {
    ++remote_closed_;
    remote_closed_seq_ = ++event_seq_;
    // The interesting part: transmit *after* the peer's FIN.
    std::vector<uint8_t> body(response_bytes_, 0xAB);
    size_t sent = 0;
    while (sent < body.size()) {
      const size_t n = stack_->Send(conn, body.data() + sent, body.size() - sent);
      if (n == 0) {
        break;
      }
      sent += n;
    }
    response_sent_ = sent;
    stack_->Close(conn);
  }
  void OnClosed(ConnId) override {
    ++fully_closed_;
    closed_seq_ = ++event_seq_;
  }

  Stack* stack_;
  uint16_t port_;
  size_t response_bytes_;
  ConnId conn_ = kInvalidConn;
  size_t received_ = 0;
  size_t response_sent_ = 0;
  int remote_closed_ = 0;
  int fully_closed_ = 0;
  int event_seq_ = 0;
  int remote_closed_seq_ = 0;
  int closed_seq_ = 0;
};

// Client: writes a small request, immediately closes its direction, and
// keeps reading the response on the half-open connection.
class HalfCloseClient : public AppHandler {
 public:
  HalfCloseClient(Stack* stack, IpAddr server, uint16_t port) : stack_(stack), server_(server), port_(port) {}

  void Start() {
    stack_->SetHandler(this);
    conn_ = stack_->Connect(server_, port_);
  }

  void OnConnected(ConnId conn, bool success) override {
    ASSERT_TRUE(success);
    uint8_t req[12] = {1};
    ASSERT_EQ(stack_->Send(conn, req, sizeof(req)), sizeof(req));
    stack_->Close(conn);  // FIN rides out right behind the request.
  }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    const size_t n = stack_->Recv(conn, buf.data(), bytes);
    for (size_t i = 0; i < n; ++i) {
      if (buf[i] != 0xAB) {
        ++corrupt_;
      }
    }
    received_ += n;
  }
  void OnRemoteClosed(ConnId) override {
    ++remote_closed_;
    remote_closed_seq_ = ++event_seq_;
  }
  void OnClosed(ConnId) override {
    ++fully_closed_;
    closed_seq_ = ++event_seq_;
  }

  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  ConnId conn_ = kInvalidConn;
  size_t received_ = 0;
  size_t corrupt_ = 0;
  int remote_closed_ = 0;
  int fully_closed_ = 0;
  int event_seq_ = 0;
  int remote_closed_seq_ = 0;
  int closed_seq_ = 0;
};

TEST(HalfCloseTest, ResponseFlowsAfterClientFin) {
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), TestLink());
  const size_t kResponse = 48 * 1024;  // Under the 64KB buffers.
  HalfCloseServer server(exp->host(0).stack(), 7000, kResponse);
  HalfCloseClient client(exp->host(1).stack(), exp->host(0).ip(), 7000);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(5));

  EXPECT_EQ(server.received_, 12u);
  EXPECT_EQ(server.remote_closed_, 1);
  EXPECT_EQ(server.response_sent_, kResponse);
  // The whole response crossed the half-open connection.
  EXPECT_EQ(client.received_, kResponse);
  EXPECT_EQ(client.corrupt_, 0u);
  // OnRemoteClosed strictly precedes OnClosed on both sides.
  EXPECT_EQ(client.remote_closed_, 1);
  EXPECT_EQ(client.fully_closed_, 1);
  EXPECT_LT(client.remote_closed_seq_, client.closed_seq_);
  EXPECT_EQ(server.fully_closed_, 1);
  EXPECT_LT(server.remote_closed_seq_, server.closed_seq_);
}

// Close() with unacked data still queued in the stack: the FIN must
// sequence after the data, so the receiver sees every byte, then the FIN.
class FloodAndCloseClient : public AppHandler {
 public:
  FloodAndCloseClient(Stack* stack, IpAddr server, uint16_t port)
      : stack_(stack), server_(server), port_(port) {}

  void Start() {
    stack_->SetHandler(this);
    stack_->Connect(server_, port_);
  }
  void OnConnected(ConnId conn, bool success) override {
    ASSERT_TRUE(success);
    // Stuff the send buffer to the brim, then close with it all pending.
    std::vector<uint8_t> chunk(4096);
    for (size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = static_cast<uint8_t>(i % 251);
    }
    size_t n;
    while ((n = stack_->Send(conn, chunk.data(), chunk.size())) > 0) {
      sent_ += n;
    }
    stack_->Close(conn);
  }
  void OnClosed(ConnId) override { ++fully_closed_; }

  Stack* stack_;
  IpAddr server_;
  uint16_t port_;
  size_t sent_ = 0;
  int fully_closed_ = 0;
};

class CountingServer : public AppHandler {
 public:
  CountingServer(Stack* stack, uint16_t port) : stack_(stack), port_(port) {}
  void Start() {
    stack_->SetHandler(this);
    stack_->Listen(port_);
  }
  void OnData(ConnId conn, size_t bytes) override {
    std::vector<uint8_t> buf(bytes);
    received_ += stack_->Recv(conn, buf.data(), bytes);
  }
  void OnRemoteClosed(ConnId conn) override {
    received_at_fin_ = received_;
    ++remote_closed_;
    stack_->Close(conn);
  }
  void OnClosed(ConnId) override { ++fully_closed_; }

  Stack* stack_;
  uint16_t port_;
  size_t received_ = 0;
  size_t received_at_fin_ = 0;
  int remote_closed_ = 0;
  int fully_closed_ = 0;
};

TEST(HalfCloseTest, CloseWithDataPendingFlushesFirst) {
  auto exp = Experiment::PointToPoint(TasSpec(), TasSpec(), TestLink());
  CountingServer server(exp->host(0).stack(), 7001);
  FloodAndCloseClient client(exp->host(1).stack(), exp->host(0).ip(), 7001);
  server.Start();
  client.Start();
  exp->sim().RunUntil(Sec(5));

  EXPECT_GT(client.sent_, 0u);
  EXPECT_EQ(server.received_, client.sent_);
  // Every queued byte had been delivered by the time the FIN surfaced.
  EXPECT_EQ(server.received_at_fin_, client.sent_);
  EXPECT_EQ(server.remote_closed_, 1);
  EXPECT_EQ(server.fully_closed_, 1);
  EXPECT_EQ(client.fully_closed_, 1);
}

}  // namespace
}  // namespace tas
