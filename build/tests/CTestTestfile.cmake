# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(app_test "/root/repo/build/tests/app_test")
set_tests_properties(app_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cc_test "/root/repo/build/tests/cc_test")
set_tests_properties(cc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cpu_test "/root/repo/build/tests/cpu_test")
set_tests_properties(cpu_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_edge_test "/root/repo/build/tests/engine_edge_test")
set_tests_properties(engine_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harness_test "/root/repo/build/tests/harness_test")
set_tests_properties(harness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(packet_test "/root/repo/build/tests/packet_test")
set_tests_properties(packet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(reassembly_test "/root/repo/build/tests/reassembly_test")
set_tests_properties(reassembly_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(slowpath_fsm_test "/root/repo/build/tests/slowpath_fsm_test")
set_tests_properties(slowpath_fsm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tas_service_test "/root/repo/build/tests/tas_service_test")
set_tests_properties(tas_service_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tas_test "/root/repo/build/tests/tas_test")
set_tests_properties(tas_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;0;")
