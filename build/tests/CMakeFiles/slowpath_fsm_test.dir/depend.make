# Empty dependencies file for slowpath_fsm_test.
# This may be replaced when dependencies are built.
