file(REMOVE_RECURSE
  "CMakeFiles/slowpath_fsm_test.dir/slowpath_fsm_test.cc.o"
  "CMakeFiles/slowpath_fsm_test.dir/slowpath_fsm_test.cc.o.d"
  "slowpath_fsm_test"
  "slowpath_fsm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slowpath_fsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
