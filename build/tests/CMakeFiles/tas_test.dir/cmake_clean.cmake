file(REMOVE_RECURSE
  "CMakeFiles/tas_test.dir/tas_test.cc.o"
  "CMakeFiles/tas_test.dir/tas_test.cc.o.d"
  "tas_test"
  "tas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
