# Empty dependencies file for tas_service_test.
# This may be replaced when dependencies are built.
