file(REMOVE_RECURSE
  "CMakeFiles/tas_service_test.dir/tas_service_test.cc.o"
  "CMakeFiles/tas_service_test.dir/tas_service_test.cc.o.d"
  "tas_service_test"
  "tas_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
