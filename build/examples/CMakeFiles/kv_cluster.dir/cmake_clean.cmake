file(REMOVE_RECURSE
  "CMakeFiles/kv_cluster.dir/kv_cluster.cpp.o"
  "CMakeFiles/kv_cluster.dir/kv_cluster.cpp.o.d"
  "kv_cluster"
  "kv_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
