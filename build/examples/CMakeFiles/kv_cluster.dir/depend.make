# Empty dependencies file for kv_cluster.
# This may be replaced when dependencies are built.
