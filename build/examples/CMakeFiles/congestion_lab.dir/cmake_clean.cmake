file(REMOVE_RECURSE
  "CMakeFiles/congestion_lab.dir/congestion_lab.cpp.o"
  "CMakeFiles/congestion_lab.dir/congestion_lab.cpp.o.d"
  "congestion_lab"
  "congestion_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
