# Empty dependencies file for congestion_lab.
# This may be replaced when dependencies are built.
