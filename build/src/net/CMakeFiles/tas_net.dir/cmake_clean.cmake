file(REMOVE_RECURSE
  "CMakeFiles/tas_net.dir/link.cc.o"
  "CMakeFiles/tas_net.dir/link.cc.o.d"
  "CMakeFiles/tas_net.dir/packet.cc.o"
  "CMakeFiles/tas_net.dir/packet.cc.o.d"
  "CMakeFiles/tas_net.dir/pcap.cc.o"
  "CMakeFiles/tas_net.dir/pcap.cc.o.d"
  "CMakeFiles/tas_net.dir/switch.cc.o"
  "CMakeFiles/tas_net.dir/switch.cc.o.d"
  "CMakeFiles/tas_net.dir/topology.cc.o"
  "CMakeFiles/tas_net.dir/topology.cc.o.d"
  "libtas_net.a"
  "libtas_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
