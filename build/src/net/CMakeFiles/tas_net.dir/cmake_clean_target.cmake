file(REMOVE_RECURSE
  "libtas_net.a"
)
