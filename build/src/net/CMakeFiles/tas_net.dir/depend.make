# Empty dependencies file for tas_net.
# This may be replaced when dependencies are built.
