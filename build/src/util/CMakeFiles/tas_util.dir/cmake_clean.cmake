file(REMOVE_RECURSE
  "CMakeFiles/tas_util.dir/logging.cc.o"
  "CMakeFiles/tas_util.dir/logging.cc.o.d"
  "CMakeFiles/tas_util.dir/ring_buffer.cc.o"
  "CMakeFiles/tas_util.dir/ring_buffer.cc.o.d"
  "CMakeFiles/tas_util.dir/rng.cc.o"
  "CMakeFiles/tas_util.dir/rng.cc.o.d"
  "CMakeFiles/tas_util.dir/stats.cc.o"
  "CMakeFiles/tas_util.dir/stats.cc.o.d"
  "libtas_util.a"
  "libtas_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
