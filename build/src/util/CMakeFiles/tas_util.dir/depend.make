# Empty dependencies file for tas_util.
# This may be replaced when dependencies are built.
