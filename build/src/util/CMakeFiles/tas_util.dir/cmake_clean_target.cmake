file(REMOVE_RECURSE
  "libtas_util.a"
)
