file(REMOVE_RECURSE
  "CMakeFiles/tas_cpu.dir/core.cc.o"
  "CMakeFiles/tas_cpu.dir/core.cc.o.d"
  "CMakeFiles/tas_cpu.dir/cost_model.cc.o"
  "CMakeFiles/tas_cpu.dir/cost_model.cc.o.d"
  "libtas_cpu.a"
  "libtas_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
