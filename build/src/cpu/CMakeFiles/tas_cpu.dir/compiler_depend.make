# Empty compiler generated dependencies file for tas_cpu.
# This may be replaced when dependencies are built.
