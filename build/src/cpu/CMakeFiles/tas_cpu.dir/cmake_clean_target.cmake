file(REMOVE_RECURSE
  "libtas_cpu.a"
)
