file(REMOVE_RECURSE
  "libtas_shm.a"
)
