file(REMOVE_RECURSE
  "CMakeFiles/tas_shm.dir/context_queue.cc.o"
  "CMakeFiles/tas_shm.dir/context_queue.cc.o.d"
  "libtas_shm.a"
  "libtas_shm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_shm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
