# Empty compiler generated dependencies file for tas_shm.
# This may be replaced when dependencies are built.
