# Empty compiler generated dependencies file for tas_nic.
# This may be replaced when dependencies are built.
