file(REMOVE_RECURSE
  "libtas_nic.a"
)
