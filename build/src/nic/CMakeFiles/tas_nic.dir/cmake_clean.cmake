file(REMOVE_RECURSE
  "CMakeFiles/tas_nic.dir/nic.cc.o"
  "CMakeFiles/tas_nic.dir/nic.cc.o.d"
  "libtas_nic.a"
  "libtas_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
