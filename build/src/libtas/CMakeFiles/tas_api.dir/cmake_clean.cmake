file(REMOVE_RECURSE
  "CMakeFiles/tas_api.dir/tas_stack.cc.o"
  "CMakeFiles/tas_api.dir/tas_stack.cc.o.d"
  "libtas_api.a"
  "libtas_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
