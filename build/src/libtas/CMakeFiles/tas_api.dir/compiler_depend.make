# Empty compiler generated dependencies file for tas_api.
# This may be replaced when dependencies are built.
