file(REMOVE_RECURSE
  "libtas_api.a"
)
