file(REMOVE_RECURSE
  "libtas_core.a"
)
