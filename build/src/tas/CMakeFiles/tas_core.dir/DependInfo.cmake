
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tas/fast_path.cc" "src/tas/CMakeFiles/tas_core.dir/fast_path.cc.o" "gcc" "src/tas/CMakeFiles/tas_core.dir/fast_path.cc.o.d"
  "/root/repo/src/tas/flow.cc" "src/tas/CMakeFiles/tas_core.dir/flow.cc.o" "gcc" "src/tas/CMakeFiles/tas_core.dir/flow.cc.o.d"
  "/root/repo/src/tas/service.cc" "src/tas/CMakeFiles/tas_core.dir/service.cc.o" "gcc" "src/tas/CMakeFiles/tas_core.dir/service.cc.o.d"
  "/root/repo/src/tas/slow_path.cc" "src/tas/CMakeFiles/tas_core.dir/slow_path.cc.o" "gcc" "src/tas/CMakeFiles/tas_core.dir/slow_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc/CMakeFiles/tas_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/tas_shm.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/tas_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tas_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
