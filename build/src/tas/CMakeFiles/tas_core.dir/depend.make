# Empty dependencies file for tas_core.
# This may be replaced when dependencies are built.
