file(REMOVE_RECURSE
  "CMakeFiles/tas_core.dir/fast_path.cc.o"
  "CMakeFiles/tas_core.dir/fast_path.cc.o.d"
  "CMakeFiles/tas_core.dir/flow.cc.o"
  "CMakeFiles/tas_core.dir/flow.cc.o.d"
  "CMakeFiles/tas_core.dir/service.cc.o"
  "CMakeFiles/tas_core.dir/service.cc.o.d"
  "CMakeFiles/tas_core.dir/slow_path.cc.o"
  "CMakeFiles/tas_core.dir/slow_path.cc.o.d"
  "libtas_core.a"
  "libtas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
