file(REMOVE_RECURSE
  "CMakeFiles/tas_baseline.dir/engine_stack.cc.o"
  "CMakeFiles/tas_baseline.dir/engine_stack.cc.o.d"
  "libtas_baseline.a"
  "libtas_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
