# Empty dependencies file for tas_baseline.
# This may be replaced when dependencies are built.
