file(REMOVE_RECURSE
  "libtas_baseline.a"
)
