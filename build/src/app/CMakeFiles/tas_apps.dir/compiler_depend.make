# Empty compiler generated dependencies file for tas_apps.
# This may be replaced when dependencies are built.
