file(REMOVE_RECURSE
  "libtas_apps.a"
)
