file(REMOVE_RECURSE
  "CMakeFiles/tas_apps.dir/bulk.cc.o"
  "CMakeFiles/tas_apps.dir/bulk.cc.o.d"
  "CMakeFiles/tas_apps.dir/flexstorm.cc.o"
  "CMakeFiles/tas_apps.dir/flexstorm.cc.o.d"
  "CMakeFiles/tas_apps.dir/kv_store.cc.o"
  "CMakeFiles/tas_apps.dir/kv_store.cc.o.d"
  "CMakeFiles/tas_apps.dir/rpc_echo.cc.o"
  "CMakeFiles/tas_apps.dir/rpc_echo.cc.o.d"
  "libtas_apps.a"
  "libtas_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
