file(REMOVE_RECURSE
  "libtas_harness.a"
)
