# Empty compiler generated dependencies file for tas_harness.
# This may be replaced when dependencies are built.
