
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/tas_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/tas_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/flowgen.cc" "src/harness/CMakeFiles/tas_harness.dir/flowgen.cc.o" "gcc" "src/harness/CMakeFiles/tas_harness.dir/flowgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/tas_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/libtas/CMakeFiles/tas_api.dir/DependInfo.cmake"
  "/root/repo/build/src/tas/CMakeFiles/tas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/tas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tas_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tas_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/tas_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/tas_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tas_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/shm/CMakeFiles/tas_shm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
