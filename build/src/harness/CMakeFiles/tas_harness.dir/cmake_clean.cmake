file(REMOVE_RECURSE
  "CMakeFiles/tas_harness.dir/experiment.cc.o"
  "CMakeFiles/tas_harness.dir/experiment.cc.o.d"
  "CMakeFiles/tas_harness.dir/flowgen.cc.o"
  "CMakeFiles/tas_harness.dir/flowgen.cc.o.d"
  "libtas_harness.a"
  "libtas_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
