# Empty dependencies file for tas_cc.
# This may be replaced when dependencies are built.
