file(REMOVE_RECURSE
  "CMakeFiles/tas_cc.dir/dctcp_rate.cc.o"
  "CMakeFiles/tas_cc.dir/dctcp_rate.cc.o.d"
  "CMakeFiles/tas_cc.dir/dctcp_window.cc.o"
  "CMakeFiles/tas_cc.dir/dctcp_window.cc.o.d"
  "CMakeFiles/tas_cc.dir/newreno.cc.o"
  "CMakeFiles/tas_cc.dir/newreno.cc.o.d"
  "CMakeFiles/tas_cc.dir/timely.cc.o"
  "CMakeFiles/tas_cc.dir/timely.cc.o.d"
  "libtas_cc.a"
  "libtas_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
