
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/dctcp_rate.cc" "src/cc/CMakeFiles/tas_cc.dir/dctcp_rate.cc.o" "gcc" "src/cc/CMakeFiles/tas_cc.dir/dctcp_rate.cc.o.d"
  "/root/repo/src/cc/dctcp_window.cc" "src/cc/CMakeFiles/tas_cc.dir/dctcp_window.cc.o" "gcc" "src/cc/CMakeFiles/tas_cc.dir/dctcp_window.cc.o.d"
  "/root/repo/src/cc/newreno.cc" "src/cc/CMakeFiles/tas_cc.dir/newreno.cc.o" "gcc" "src/cc/CMakeFiles/tas_cc.dir/newreno.cc.o.d"
  "/root/repo/src/cc/timely.cc" "src/cc/CMakeFiles/tas_cc.dir/timely.cc.o" "gcc" "src/cc/CMakeFiles/tas_cc.dir/timely.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
