file(REMOVE_RECURSE
  "libtas_cc.a"
)
