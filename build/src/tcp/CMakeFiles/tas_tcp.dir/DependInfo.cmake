
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/engine.cc" "src/tcp/CMakeFiles/tas_tcp.dir/engine.cc.o" "gcc" "src/tcp/CMakeFiles/tas_tcp.dir/engine.cc.o.d"
  "/root/repo/src/tcp/reassembly.cc" "src/tcp/CMakeFiles/tas_tcp.dir/reassembly.cc.o" "gcc" "src/tcp/CMakeFiles/tas_tcp.dir/reassembly.cc.o.d"
  "/root/repo/src/tcp/rtt.cc" "src/tcp/CMakeFiles/tas_tcp.dir/rtt.cc.o" "gcc" "src/tcp/CMakeFiles/tas_tcp.dir/rtt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tas_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/tas_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tas_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
