file(REMOVE_RECURSE
  "libtas_tcp.a"
)
