file(REMOVE_RECURSE
  "CMakeFiles/tas_tcp.dir/engine.cc.o"
  "CMakeFiles/tas_tcp.dir/engine.cc.o.d"
  "CMakeFiles/tas_tcp.dir/reassembly.cc.o"
  "CMakeFiles/tas_tcp.dir/reassembly.cc.o.d"
  "CMakeFiles/tas_tcp.dir/rtt.cc.o"
  "CMakeFiles/tas_tcp.dir/rtt.cc.o.d"
  "libtas_tcp.a"
  "libtas_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
