# Empty dependencies file for tas_tcp.
# This may be replaced when dependencies are built.
