# Empty dependencies file for tas_sim.
# This may be replaced when dependencies are built.
