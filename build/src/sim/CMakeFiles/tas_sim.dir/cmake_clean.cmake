file(REMOVE_RECURSE
  "CMakeFiles/tas_sim.dir/simulator.cc.o"
  "CMakeFiles/tas_sim.dir/simulator.cc.o.d"
  "libtas_sim.a"
  "libtas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
