file(REMOVE_RECURSE
  "libtas_sim.a"
)
