file(REMOVE_RECURSE
  "CMakeFiles/fig12_cluster.dir/fig12_cluster.cc.o"
  "CMakeFiles/fig12_cluster.dir/fig12_cluster.cc.o.d"
  "fig12_cluster"
  "fig12_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
