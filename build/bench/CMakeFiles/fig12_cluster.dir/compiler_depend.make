# Empty compiler generated dependencies file for fig12_cluster.
# This may be replaced when dependencies are built.
