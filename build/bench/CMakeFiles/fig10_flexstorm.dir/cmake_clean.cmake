file(REMOVE_RECURSE
  "CMakeFiles/fig10_flexstorm.dir/fig10_flexstorm.cc.o"
  "CMakeFiles/fig10_flexstorm.dir/fig10_flexstorm.cc.o.d"
  "fig10_flexstorm"
  "fig10_flexstorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_flexstorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
