# Empty compiler generated dependencies file for fig10_flexstorm.
# This may be replaced when dependencies are built.
