file(REMOVE_RECURSE
  "CMakeFiles/fig4_connscale.dir/fig4_connscale.cc.o"
  "CMakeFiles/fig4_connscale.dir/fig4_connscale.cc.o.d"
  "fig4_connscale"
  "fig4_connscale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_connscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
