# Empty compiler generated dependencies file for fig4_connscale.
# This may be replaced when dependencies are built.
