# Empty compiler generated dependencies file for fig11_cc_interval.
# This may be replaced when dependencies are built.
