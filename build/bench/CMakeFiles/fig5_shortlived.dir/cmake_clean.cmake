file(REMOVE_RECURSE
  "CMakeFiles/fig5_shortlived.dir/fig5_shortlived.cc.o"
  "CMakeFiles/fig5_shortlived.dir/fig5_shortlived.cc.o.d"
  "fig5_shortlived"
  "fig5_shortlived.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_shortlived.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
