# Empty compiler generated dependencies file for fig5_shortlived.
# This may be replaced when dependencies are built.
