# Empty compiler generated dependencies file for fig9_kv_latency.
# This may be replaced when dependencies are built.
