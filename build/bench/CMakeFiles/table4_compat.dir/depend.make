# Empty dependencies file for table4_compat.
# This may be replaced when dependencies are built.
