file(REMOVE_RECURSE
  "CMakeFiles/table4_compat.dir/table4_compat.cc.o"
  "CMakeFiles/table4_compat.dir/table4_compat.cc.o.d"
  "table4_compat"
  "table4_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
