# Empty compiler generated dependencies file for fig7_loss.
# This may be replaced when dependencies are built.
