file(REMOVE_RECURSE
  "CMakeFiles/fig7_loss.dir/fig7_loss.cc.o"
  "CMakeFiles/fig7_loss.dir/fig7_loss.cc.o.d"
  "fig7_loss"
  "fig7_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
