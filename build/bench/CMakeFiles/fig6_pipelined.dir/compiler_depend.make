# Empty compiler generated dependencies file for fig6_pipelined.
# This may be replaced when dependencies are built.
