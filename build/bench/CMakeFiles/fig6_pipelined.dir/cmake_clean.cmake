file(REMOVE_RECURSE
  "CMakeFiles/fig6_pipelined.dir/fig6_pipelined.cc.o"
  "CMakeFiles/fig6_pipelined.dir/fig6_pipelined.cc.o.d"
  "fig6_pipelined"
  "fig6_pipelined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pipelined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
