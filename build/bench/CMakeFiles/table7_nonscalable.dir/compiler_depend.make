# Empty compiler generated dependencies file for table7_nonscalable.
# This may be replaced when dependencies are built.
