file(REMOVE_RECURSE
  "CMakeFiles/table7_nonscalable.dir/table7_nonscalable.cc.o"
  "CMakeFiles/table7_nonscalable.dir/table7_nonscalable.cc.o.d"
  "table7_nonscalable"
  "table7_nonscalable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_nonscalable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
