file(REMOVE_RECURSE
  "CMakeFiles/fig14_proportionality.dir/fig14_proportionality.cc.o"
  "CMakeFiles/fig14_proportionality.dir/fig14_proportionality.cc.o.d"
  "fig14_proportionality"
  "fig14_proportionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_proportionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
