# Empty dependencies file for fig14_proportionality.
# This may be replaced when dependencies are built.
