# Empty dependencies file for table2_counters.
# This may be replaced when dependencies are built.
