file(REMOVE_RECURSE
  "CMakeFiles/table2_counters.dir/table2_counters.cc.o"
  "CMakeFiles/table2_counters.dir/table2_counters.cc.o.d"
  "table2_counters"
  "table2_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
