file(REMOVE_RECURSE
  "CMakeFiles/ablation_state_size.dir/ablation_state_size.cc.o"
  "CMakeFiles/ablation_state_size.dir/ablation_state_size.cc.o.d"
  "ablation_state_size"
  "ablation_state_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_state_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
