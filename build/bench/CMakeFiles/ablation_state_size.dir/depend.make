# Empty dependencies file for ablation_state_size.
# This may be replaced when dependencies are built.
